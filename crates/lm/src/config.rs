//! Model hyper-parameter configuration and the preset stand-ins for the
//! paper's LLaMA-7B / LLaMA-13B targets.

use serde::{Deserialize, Serialize};

use crate::LmError;

/// Hyper-parameters of a LLaMA-family decoder-only transformer.
///
/// # Example
///
/// ```
/// use aptq_lm::ModelConfig;
///
/// let cfg = ModelConfig::tiny_llama_s(128);
/// assert_eq!(cfg.d_model % cfg.n_heads, 0);
/// assert!(cfg.validate().is_ok());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Human-readable model name used in reports.
    pub name: String,
    /// Vocabulary size (token ids are `0..vocab_size`).
    pub vocab_size: usize,
    /// Residual stream width.
    pub d_model: usize,
    /// Number of attention heads; must divide `d_model`.
    pub n_heads: usize,
    /// Number of transformer blocks.
    pub n_layers: usize,
    /// Hidden width of the SwiGLU feed-forward.
    pub d_ff: usize,
    /// Maximum sequence length the RoPE table is built for.
    pub max_seq_len: usize,
    /// RoPE base frequency (LLaMA uses 10000).
    pub rope_theta: f32,
    /// RMSNorm epsilon.
    pub norm_eps: f32,
}

impl ModelConfig {
    /// Stand-in for LLaMA-7B: the smaller of the two evaluation models.
    ///
    /// Same block structure as LLaMA (RMSNorm → attention → residual →
    /// RMSNorm → SwiGLU → residual) at laptop scale. The width is
    /// deliberately capacity-matched to the synthetic task (see
    /// DESIGN.md §2): at larger widths the model is so over-parameterized
    /// that even 2-bit quantization is lossless after error
    /// compensation, which would erase every comparison the paper makes.
    pub fn tiny_llama_s(vocab_size: usize) -> Self {
        ModelConfig {
            // audit:allow(alloc): cold constructor — builds the config name once
            name: "TinyLlama-S".to_string(),
            vocab_size,
            d_model: 32,
            n_heads: 4,
            n_layers: 6,
            d_ff: 64,
            max_seq_len: 128,
            rope_theta: 10_000.0,
            norm_eps: 1e-5,
        }
    }

    /// Stand-in for LLaMA-13B: wider and deeper than [`tiny_llama_s`].
    ///
    /// [`tiny_llama_s`]: ModelConfig::tiny_llama_s
    pub fn tiny_llama_m(vocab_size: usize) -> Self {
        ModelConfig {
            // audit:allow(alloc): cold constructor — builds the config name once
            name: "TinyLlama-M".to_string(),
            vocab_size,
            d_model: 36,
            n_heads: 6,
            n_layers: 7,
            d_ff: 80,
            max_seq_len: 128,
            rope_theta: 10_000.0,
            norm_eps: 1e-5,
        }
    }

    /// Minimal configuration for unit tests: 2 layers, width 16.
    pub fn test_tiny(vocab_size: usize) -> Self {
        ModelConfig {
            name: "test-tiny".to_string(),
            vocab_size,
            d_model: 16,
            n_heads: 2,
            n_layers: 2,
            d_ff: 32,
            max_seq_len: 32,
            rope_theta: 10_000.0,
            norm_eps: 1e-5,
        }
    }

    /// Head dimension `d_model / n_heads`.
    pub fn d_head(&self) -> usize {
        self.d_model / self.n_heads
    }

    /// Total number of trainable parameters.
    pub fn param_count(&self) -> usize {
        let attn = 4 * self.d_model * self.d_model;
        let ffn = 3 * self.d_model * self.d_ff;
        let norms = 2 * self.d_model;
        let per_block = attn + ffn + norms;
        let embed = self.vocab_size * self.d_model;
        let head = self.d_model * self.vocab_size;
        let final_norm = self.d_model;
        self.n_layers * per_block + embed + head + final_norm
    }

    /// Checks structural invariants.
    ///
    /// # Errors
    ///
    /// Returns [`LmError::InvalidConfig`] if any dimension is zero, the
    /// head count does not divide the model width, or the head dimension
    /// is odd (RoPE rotates coordinate pairs).
    pub fn validate(&self) -> Result<(), LmError> {
        if self.vocab_size == 0
            || self.d_model == 0
            || self.n_heads == 0
            || self.n_layers == 0
            || self.d_ff == 0
            || self.max_seq_len == 0
        {
            return Err(LmError::InvalidConfig(
                "all dimensions must be positive".into(),
            ));
        }
        if !self.d_model.is_multiple_of(self.n_heads) {
            return Err(LmError::InvalidConfig(format!(
                "n_heads {} must divide d_model {}",
                self.n_heads, self.d_model
            )));
        }
        if !self.d_head().is_multiple_of(2) {
            return Err(LmError::InvalidConfig(format!(
                "head dimension {} must be even for RoPE",
                self.d_head()
            )));
        }
        if self.rope_theta <= 0.0 || self.norm_eps <= 0.0 {
            return Err(LmError::InvalidConfig(
                "rope_theta and norm_eps must be positive".into(),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        assert!(ModelConfig::tiny_llama_s(200).validate().is_ok());
        assert!(ModelConfig::tiny_llama_m(200).validate().is_ok());
        assert!(ModelConfig::test_tiny(32).validate().is_ok());
    }

    #[test]
    fn m_is_bigger_than_s() {
        let s = ModelConfig::tiny_llama_s(200);
        let m = ModelConfig::tiny_llama_m(200);
        assert!(m.param_count() > s.param_count());
        assert!(m.n_layers > s.n_layers);
        assert!(m.d_model > s.d_model);
    }

    #[test]
    fn d_head_divides() {
        let s = ModelConfig::tiny_llama_s(100);
        assert_eq!(s.d_head() * s.n_heads, s.d_model);
        assert_eq!(s.d_head() % 2, 0);
    }

    #[test]
    fn param_count_hand_check() {
        let cfg = ModelConfig::test_tiny(10);
        // per block: 4*16*16 + 3*16*32 + 2*16 = 1024 + 1536 + 32 = 2592
        // embed 10*16=160, head 16*10=160, final norm 16
        assert_eq!(cfg.param_count(), 2 * 2592 + 160 + 160 + 16);
    }

    #[test]
    fn validate_rejects_bad_heads() {
        let mut cfg = ModelConfig::test_tiny(10);
        cfg.n_heads = 3; // does not divide 16
        assert!(cfg.validate().is_err());
        cfg.n_heads = 8; // d_head = 2, even — fine
        assert!(cfg.validate().is_ok());
        cfg.d_model = 8;
        cfg.n_heads = 8; // d_head = 1, odd
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn validate_rejects_zero_dims() {
        let mut cfg = ModelConfig::test_tiny(10);
        cfg.n_layers = 0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn serde_roundtrip() {
        let cfg = ModelConfig::tiny_llama_s(123);
        let json = serde_json::to_string(&cfg).unwrap();
        let back: ModelConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(cfg, back);
    }
}
