//! Deterministic and sampled text generation.
//!
//! Both entry points decode through [`DecodeSession`] (O(T) per token);
//! [`generate_greedy`] remains the uncached reference implementation
//! the cached paths are tested against. All generation functions share
//! one contract:
//!
//! - an empty prompt is [`LmError::EmptyInput`];
//! - a prompt longer than `max_seq_len` is [`LmError::SequenceFull`]
//!   (the model cannot attend over more positions than its RoPE table
//!   covers — silently sliding a window over the prompt would score
//!   different tokens than the caller supplied);
//! - generation stops early once the context is full, so at most
//!   `max_seq_len + 1` total tokens are ever returned (the final token
//!   is predicted from a full context but never fed back).

use aptq_tensor::activation::softmax;
use rand::rngs::StdRng;
use rand::Rng;

use crate::decode::DecodeSession;
use crate::linear::LinearOp;
use crate::model::ModelOf;
use crate::LmError;

/// Sampling configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampleConfig {
    /// Softmax temperature; `0.0` selects greedy decoding.
    pub temperature: f32,
    /// Keep only the `top_k` most likely tokens (0 = all).
    pub top_k: usize,
}

impl Default for SampleConfig {
    fn default() -> Self {
        SampleConfig {
            temperature: 1.0,
            top_k: 0,
        }
    }
}

/// Greedily extends `prompt` by `n_new` tokens, re-running the full
/// forward pass every step — the O(T²) reference implementation that
/// [`crate::decode::generate_greedy_cached`] is verified against.
///
/// Token selection goes through [`aptq_tensor::select::argmax`]: NaN
/// logits never win and ties break toward the lowest token id.
///
/// # Determinism
///
/// The forward pass runs on the shared matmul threadpool
/// ([`aptq_tensor::parallel`]); outputs are bit-identical at any
/// `APTQ_THREADS` value.
///
/// # Errors
///
/// Returns [`LmError::EmptyInput`] for an empty prompt,
/// [`LmError::SequenceFull`] for a prompt longer than `max_seq_len`
/// (see the module contract), and [`LmError::TokenOutOfRange`] for
/// invalid prompt tokens.
pub fn generate_greedy<L: LinearOp>(
    model: &ModelOf<L>,
    prompt: &[u32],
    n_new: usize,
) -> Result<Vec<u32>, LmError> {
    if prompt.is_empty() {
        return Err(LmError::EmptyInput);
    }
    let max = model.config().max_seq_len;
    if prompt.len() > max {
        return Err(LmError::SequenceFull {
            pos: max,
            max_seq_len: max,
        });
    }
    let mut tokens = prompt.to_vec();
    for _ in 0..n_new {
        if tokens.len() > max {
            break;
        }
        let logits = model.try_forward(&tokens)?;
        let last = logits.row(logits.rows() - 1);
        let next = aptq_tensor::select::argmax(last);
        tokens.push(next as u32);
    }
    Ok(tokens)
}

/// Extends `prompt` by `n_new` tokens with temperature / top-k
/// sampling through a fresh [`DecodeSession`] — O(T) cached steps, not
/// O(T²) re-forwards.
///
/// The top-k filter keeps **exactly** `min(k, vocab)` candidates via
/// [`aptq_tensor::select::top_k_indices`] — boundary ties resolve by
/// token id instead of widening the candidate set, and NaN logits are
/// never sampled. When floating-point rounding leaves the CDF short of
/// the drawn `r`, the fallback is the **highest-probability kept**
/// index, never a top-k-masked (zero-probability) token.
///
/// # Determinism
///
/// Bit-identical for a fixed seed at any `APTQ_THREADS` value; exactly
/// one RNG draw per emitted token when `temperature > 0`, none at
/// `temperature <= 0` (greedy).
///
/// # Errors
///
/// Same as [`generate_greedy`] (see the module contract).
pub fn generate_sampled<L: LinearOp>(
    model: &ModelOf<L>,
    prompt: &[u32],
    n_new: usize,
    cfg: SampleConfig,
    rng: &mut StdRng,
) -> Result<Vec<u32>, LmError> {
    let mut session = DecodeSession::new(model);
    generate_sampled_session(&mut session, prompt, n_new, cfg, rng)
}

/// [`generate_sampled`] over a caller-provided session, so tests and
/// telemetry can inspect [`DecodeSession::metrics`] afterwards (the
/// per-token counters must be flat — cached steps, no prefix
/// re-execution). The session must be fresh (no tokens fed).
///
/// # Determinism
///
/// Bit-identical for a fixed seed at any `APTQ_THREADS` value; see
/// [`generate_sampled`].
///
/// # Errors
///
/// Same as [`generate_sampled`].
pub fn generate_sampled_session<L: LinearOp>(
    session: &mut DecodeSession<'_, L>,
    prompt: &[u32],
    n_new: usize,
    cfg: SampleConfig,
    rng: &mut StdRng,
) -> Result<Vec<u32>, LmError> {
    if prompt.is_empty() {
        return Err(LmError::EmptyInput);
    }
    let max = session.model().config().max_seq_len;
    if prompt.len() > max {
        return Err(LmError::SequenceFull {
            pos: max,
            max_seq_len: max,
        });
    }
    let mut logits = session.feed_all(prompt)?;
    let mut out = prompt.to_vec();
    for _ in 0..n_new {
        let next = if cfg.temperature <= 0.0 {
            aptq_tensor::select::argmax(&logits)
        } else {
            sample_step(&logits, cfg, rng)
        };
        out.push(next as u32);
        if session.len() >= max {
            break;
        }
        logits = session.feed(next as u32)?;
    }
    Ok(out)
}

/// Temperature-scales and top-k-masks one logit row, then samples from
/// its softmax with a single RNG draw.
fn sample_step(logits: &[f32], cfg: SampleConfig, rng: &mut StdRng) -> usize {
    let mut scaled: Vec<f32> = logits.to_vec();
    for v in &mut scaled {
        *v /= cfg.temperature;
    }
    if cfg.top_k > 0 && cfg.top_k < scaled.len() {
        let keep = aptq_tensor::select::top_k_indices(&scaled, cfg.top_k);
        let mut masked = vec![f32::NEG_INFINITY; scaled.len()];
        for &i in &keep {
            masked[i] = scaled[i];
        }
        scaled = masked;
    }
    let probs = softmax(&aptq_tensor::Matrix::from_vec(1, scaled.len(), scaled));
    let r: f32 = rng.gen_range(0.0..1.0);
    sample_from_cdf(probs.row(0), r)
}

/// Walks the CDF of `probs` and returns the first index whose
/// cumulative mass exceeds `r`.
///
/// When f32 rounding leaves the total cumulative mass below `r`
/// (possible since the summation order here differs from the softmax's
/// own normalization), the fallback is the **highest-probability**
/// index via [`aptq_tensor::select::argmax`] — never blindly the last
/// index, which top-k masking may have zeroed out entirely.
fn sample_from_cdf(probs: &[f32], r: f32) -> usize {
    let mut acc = 0.0f32;
    for (i, &p) in probs.iter().enumerate() {
        acc += p;
        if r < acc {
            return i;
        }
    }
    aptq_tensor::select::argmax(probs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Model, ModelConfig};
    use aptq_tensor::init;

    fn model() -> Model {
        Model::new(&ModelConfig::test_tiny(16), 21)
    }

    #[test]
    fn greedy_is_deterministic_and_extends() {
        let m = model();
        let a = generate_greedy(&m, &[1, 2, 3], 5).unwrap();
        let b = generate_greedy(&m, &[1, 2, 3], 5).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.len(), 8);
        assert_eq!(&a[..3], &[1, 2, 3]);
        assert!(a.iter().all(|&t| (t as usize) < 16));
    }

    #[test]
    fn greedy_rejects_empty_prompt() {
        let m = model();
        assert!(matches!(
            generate_greedy(&m, &[], 3),
            Err(LmError::EmptyInput)
        ));
    }

    #[test]
    fn sampling_respects_vocab_and_seed() {
        let m = model();
        let cfg = SampleConfig {
            temperature: 1.2,
            top_k: 4,
        };
        let a = generate_sampled(&m, &[1], 10, cfg, &mut init::rng(5)).unwrap();
        let b = generate_sampled(&m, &[1], 10, cfg, &mut init::rng(5)).unwrap();
        assert_eq!(a, b, "same seed must give same sample");
        assert!(a.iter().all(|&t| (t as usize) < 16));
    }

    #[test]
    fn zero_temperature_falls_back_to_greedy() {
        let m = model();
        let cfg = SampleConfig {
            temperature: 0.0,
            top_k: 0,
        };
        let sampled = generate_sampled(&m, &[2, 3], 4, cfg, &mut init::rng(1)).unwrap();
        let greedy = generate_greedy(&m, &[2, 3], 4).unwrap();
        assert_eq!(sampled, greedy);
    }

    #[test]
    fn sampled_matches_full_reforward_reference() {
        // Regression for the O(T²) sampled path: the cached rewrite
        // must emit the same tokens as the old implementation — a full
        // re-forward per step — for the same seed and config.
        let m = model();
        let cfg = SampleConfig {
            temperature: 0.9,
            top_k: 6,
        };
        let prompt = [1u32, 4, 2];
        let n_new = 12;
        let cached = generate_sampled(&m, &prompt, n_new, cfg, &mut init::rng(11)).unwrap();

        let mut rng = init::rng(11);
        let mut tokens = prompt.to_vec();
        for _ in 0..n_new {
            let logits = m.try_forward(&tokens).unwrap();
            let next = sample_step(logits.row(logits.rows() - 1), cfg, &mut rng);
            tokens.push(next as u32);
        }
        assert_eq!(cached, tokens);
    }

    #[test]
    fn sampled_per_token_cost_is_flat() {
        // The cached sampled path must feed each token exactly once:
        // total decode work equals prompt + generated-but-one tokens,
        // with KV write traffic linear in that count — not quadratic.
        let m = model();
        let cfg = SampleConfig {
            temperature: 1.1,
            top_k: 4,
        };
        let mut session = DecodeSession::new(&m);
        let out =
            generate_sampled_session(&mut session, &[1, 2, 3], 10, cfg, &mut init::rng(3)).unwrap();
        assert_eq!(out.len(), 13);
        // 3 prompt tokens + the 10 sampled tokens, each fed exactly
        // once (same loop shape as generate_greedy_cached); a
        // re-forwarding implementation would score sequences of length
        // 3, 4, ..., 12 — 75 token-forwards instead of 13.
        assert_eq!(session.metrics().get("decode/tokens"), 13);
        assert_eq!(
            session.metrics().get("decode/kv_bytes_moved"),
            session.cache_bytes() as u64
        );
    }

    #[test]
    fn cdf_fallback_never_selects_masked_token() {
        // Regression: with the last vocab slot masked to probability
        // zero and r beyond the (rounding-shortened) total mass, the
        // old fallback `probs.len() - 1` returned the masked token;
        // the fix falls back to the highest-probability kept index.
        // 0.3 + 0.3 + 0.3 sums to 0.90000004 < 0.95 in f32.
        let probs = [0.3f32, 0.3, 0.3, 0.0];
        assert_eq!(sample_from_cdf(&probs, 0.95), 0);
        // Inside the mass the walk is untouched by the fix.
        assert_eq!(sample_from_cdf(&probs, 0.0), 0);
        assert_eq!(sample_from_cdf(&probs, 0.35), 1);
        assert_eq!(sample_from_cdf(&probs, 0.65), 2);
    }

    #[test]
    fn sampling_with_top_k_never_emits_masked_tokens() {
        // End-to-end version of the CDF fallback regression: with
        // top_k = 1 only the argmax survives masking, so every emitted
        // token must equal the greedy choice no matter what r is drawn.
        let m = model();
        let cfg = SampleConfig {
            temperature: 1.0,
            top_k: 1,
        };
        for seed in 0..8 {
            let sampled = generate_sampled(&m, &[2, 3], 6, cfg, &mut init::rng(seed)).unwrap();
            let greedy = generate_greedy(&m, &[2, 3], 6).unwrap();
            assert_eq!(sampled, greedy, "seed {seed}");
        }
    }

    #[test]
    fn long_prompts_error_instead_of_sliding_a_window() {
        // Contract unification: both greedy paths (and the sampled
        // path) reject prompts longer than max_seq_len with
        // SequenceFull instead of silently scoring a slid window.
        let m = model();
        let prompt: Vec<u32> = (0..40).map(|i| (i % 16) as u32).collect();
        assert!(matches!(
            generate_greedy(&m, &prompt, 2),
            Err(LmError::SequenceFull {
                pos: 32,
                max_seq_len: 32
            })
        ));
        assert!(matches!(
            crate::decode::generate_greedy_cached(&m, &prompt, 2),
            Err(LmError::SequenceFull { .. })
        ));
        assert!(matches!(
            generate_sampled(&m, &prompt, 2, SampleConfig::default(), &mut init::rng(0)),
            Err(LmError::SequenceFull { .. })
        ));
    }

    #[test]
    fn generation_at_context_boundary_is_capped_and_consistent() {
        // Exactly max_seq_len prompt tokens: both greedy paths emit
        // exactly one more token (predicted from the full context,
        // never fed back) and agree bit-for-bit.
        let m = model();
        let max = 32;
        let prompt: Vec<u32> = (0..max).map(|i| (i % 16) as u32).collect();
        let uncached = generate_greedy(&m, &prompt, 5).unwrap();
        let cached = crate::decode::generate_greedy_cached(&m, &prompt, 5).unwrap();
        assert_eq!(uncached.len(), max + 1);
        assert_eq!(uncached, cached);
        // One token below the boundary: two new tokens fit.
        let prompt: Vec<u32> = (0..max - 1).map(|i| (i % 16) as u32).collect();
        let uncached = generate_greedy(&m, &prompt, 5).unwrap();
        let cached = crate::decode::generate_greedy_cached(&m, &prompt, 5).unwrap();
        assert_eq!(uncached.len(), max + 1);
        assert_eq!(uncached, cached);
    }
}
