//! Deterministic and sampled text generation.

use aptq_tensor::activation::softmax;
use rand::rngs::StdRng;
use rand::Rng;

use crate::linear::LinearOp;
use crate::model::ModelOf;
use crate::LmError;

/// Sampling configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampleConfig {
    /// Softmax temperature; `0.0` selects greedy decoding.
    pub temperature: f32,
    /// Keep only the `top_k` most likely tokens (0 = all).
    pub top_k: usize,
}

impl Default for SampleConfig {
    fn default() -> Self {
        SampleConfig {
            temperature: 1.0,
            top_k: 0,
        }
    }
}

/// Greedily extends `prompt` by `n_new` tokens.
///
/// Token selection goes through [`aptq_tensor::select::argmax`]: NaN
/// logits never win and ties break toward the lowest token id.
///
/// # Determinism
///
/// The forward pass runs on the shared matmul threadpool
/// ([`aptq_tensor::parallel`]); outputs are bit-identical at any
/// `APTQ_THREADS` value.
///
/// # Errors
///
/// Returns [`LmError::EmptyInput`] for an empty prompt and
/// [`LmError::TokenOutOfRange`] for invalid prompt tokens.
pub fn generate_greedy<L: LinearOp>(
    model: &ModelOf<L>,
    prompt: &[u32],
    n_new: usize,
) -> Result<Vec<u32>, LmError> {
    let mut tokens = prompt.to_vec();
    for _ in 0..n_new {
        let window = clamp_window(model, &tokens);
        let logits = model.try_forward(window)?;
        let last = logits.row(logits.rows() - 1);
        let next = aptq_tensor::select::argmax(last);
        tokens.push(next as u32);
    }
    Ok(tokens)
}

/// Extends `prompt` by `n_new` tokens with temperature / top-k sampling.
///
/// The top-k filter keeps **exactly** `min(k, vocab)` candidates via
/// [`aptq_tensor::select::top_k_indices`] — boundary ties resolve by
/// token id instead of widening the candidate set, and NaN logits are
/// never sampled.
///
/// # Determinism
///
/// Bit-identical for a fixed seed at any `APTQ_THREADS` value; see
/// [`generate_greedy`].
///
/// # Errors
///
/// Same as [`generate_greedy`].
pub fn generate_sampled<L: LinearOp>(
    model: &ModelOf<L>,
    prompt: &[u32],
    n_new: usize,
    cfg: SampleConfig,
    rng: &mut StdRng,
) -> Result<Vec<u32>, LmError> {
    if cfg.temperature <= 0.0 {
        return generate_greedy(model, prompt, n_new);
    }
    let mut tokens = prompt.to_vec();
    for _ in 0..n_new {
        let window = clamp_window(model, &tokens);
        let logits = model.try_forward(window)?;
        let mut last: Vec<f32> = logits.row(logits.rows() - 1).to_vec();
        for v in &mut last {
            *v /= cfg.temperature;
        }
        if cfg.top_k > 0 && cfg.top_k < last.len() {
            let keep = aptq_tensor::select::top_k_indices(&last, cfg.top_k);
            let mut masked = vec![f32::NEG_INFINITY; last.len()];
            for &i in &keep {
                masked[i] = last[i];
            }
            last = masked;
        }
        let probs = softmax(&aptq_tensor::Matrix::from_vec(1, last.len(), last));
        let r: f32 = rng.gen_range(0.0..1.0);
        let mut acc = 0.0;
        let mut chosen = probs.cols() - 1;
        for (i, &p) in probs.row(0).iter().enumerate() {
            acc += p;
            if r < acc {
                chosen = i;
                break;
            }
        }
        tokens.push(chosen as u32);
    }
    Ok(tokens)
}

fn clamp_window<'a, L: LinearOp>(model: &ModelOf<L>, tokens: &'a [u32]) -> &'a [u32] {
    let max = model.config().max_seq_len;
    if tokens.len() > max {
        &tokens[tokens.len() - max..]
    } else {
        tokens
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Model, ModelConfig};
    use aptq_tensor::init;

    fn model() -> Model {
        Model::new(&ModelConfig::test_tiny(16), 21)
    }

    #[test]
    fn greedy_is_deterministic_and_extends() {
        let m = model();
        let a = generate_greedy(&m, &[1, 2, 3], 5).unwrap();
        let b = generate_greedy(&m, &[1, 2, 3], 5).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.len(), 8);
        assert_eq!(&a[..3], &[1, 2, 3]);
        assert!(a.iter().all(|&t| (t as usize) < 16));
    }

    #[test]
    fn greedy_rejects_empty_prompt() {
        let m = model();
        assert!(matches!(
            generate_greedy(&m, &[], 3),
            Err(LmError::EmptyInput)
        ));
    }

    #[test]
    fn sampling_respects_vocab_and_seed() {
        let m = model();
        let cfg = SampleConfig {
            temperature: 1.2,
            top_k: 4,
        };
        let a = generate_sampled(&m, &[1], 10, cfg, &mut init::rng(5)).unwrap();
        let b = generate_sampled(&m, &[1], 10, cfg, &mut init::rng(5)).unwrap();
        assert_eq!(a, b, "same seed must give same sample");
        assert!(a.iter().all(|&t| (t as usize) < 16));
    }

    #[test]
    fn zero_temperature_falls_back_to_greedy() {
        let m = model();
        let cfg = SampleConfig {
            temperature: 0.0,
            top_k: 0,
        };
        let sampled = generate_sampled(&m, &[2, 3], 4, cfg, &mut init::rng(1)).unwrap();
        let greedy = generate_greedy(&m, &[2, 3], 4).unwrap();
        assert_eq!(sampled, greedy);
    }

    #[test]
    fn long_prompts_are_windowed() {
        let m = model();
        // Prompt longer than max_seq_len (32 for test_tiny).
        let prompt: Vec<u32> = (0..40).map(|i| (i % 16) as u32).collect();
        let out = generate_greedy(&m, &prompt, 2).unwrap();
        assert_eq!(out.len(), 42);
    }
}
