//! Batch-parallel pretraining loop.
//!
//! The paper quantizes *pretrained* checkpoints; our substitute models are
//! pretrained here, on the synthetic corpus, with Adam and scoped
//! parallelism over the batch (each sequence's forward/backward is
//! independent; gradients are merged in batch order on the main thread,
//! so training is bit-identical at any thread count).

use aptq_tensor::parallel::thread_count;

use crate::adam::{Adam, AdamConfig};
use crate::model::{Model, ModelGrads};

/// Training hyper-parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainerConfig {
    /// Number of optimizer steps.
    pub steps: usize,
    /// Sequences per step.
    pub batch_size: usize,
    /// Adam settings.
    pub adam: AdamConfig,
    /// Print a progress line every `log_every` steps (0 = silent).
    pub log_every: usize,
}

impl Default for TrainerConfig {
    fn default() -> Self {
        TrainerConfig {
            steps: 600,
            batch_size: 16,
            adam: AdamConfig::default(),
            log_every: 0,
        }
    }
}

/// Summary of a training run.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainReport {
    /// Mean loss over the first 10 steps.
    pub initial_loss: f32,
    /// Mean loss over the last 10 steps.
    pub final_loss: f32,
    /// Total optimizer steps taken.
    pub steps: usize,
}

/// Runs the training loop: samples batches from a data source and applies
/// Adam updates.
#[derive(Debug)]
pub struct Trainer {
    cfg: TrainerConfig,
}

impl Trainer {
    /// Creates a trainer with the given configuration.
    pub fn new(cfg: TrainerConfig) -> Self {
        Trainer { cfg }
    }

    /// Trains `model` in place.
    ///
    /// `next_batch` is called once per step with the step index and must
    /// return a non-empty batch of token sequences (each of length ≥ 2).
    ///
    /// # Determinism
    ///
    /// For a fixed model seed and batch stream the trained weights are
    /// bit-identical at any thread count (see [`batch_grads`]).
    ///
    /// # Panics
    ///
    /// Panics if `next_batch` returns an empty batch.
    pub fn run(
        &self,
        model: &mut Model,
        mut next_batch: impl FnMut(usize) -> Vec<Vec<u32>>,
    ) -> TrainReport {
        let mut adam = Adam::new(model, self.cfg.adam);
        let mut early = Vec::new();
        let mut late = Vec::new();
        for step in 0..self.cfg.steps {
            let batch = next_batch(step);
            assert!(!batch.is_empty(), "trainer: batch must be non-empty");
            let (loss, mut grads) = batch_grads(model, &batch);
            grads.scale_assign(1.0 / batch.len() as f32);
            adam.step(model, &grads);
            if step < 10 {
                early.push(loss);
            }
            if step + 10 >= self.cfg.steps {
                late.push(loss);
            }
            if self.cfg.log_every > 0 && step % self.cfg.log_every == 0 {
                eprintln!("step {step:5}  loss {loss:.4}");
            }
        }
        TrainReport {
            initial_loss: mean(&early),
            final_loss: mean(&late),
            steps: self.cfg.steps,
        }
    }
}

/// Computes the mean loss and summed gradients of a batch, parallelizing
/// over sequences via [`aptq_tensor::parallel::run_indexed`] with
/// [`aptq_tensor::parallel::thread_count`] workers.
///
/// # Determinism
///
/// Bit-identical for every thread count: per-sequence (loss, grads)
/// pairs come back in batch order and are reduced sequentially in that
/// order, so the floating-point summation order never depends on how
/// sequences were distributed across workers. (The cost is holding one
/// gradient set per sequence instead of one per worker — fine at the
/// batch sizes this repo trains with.)
pub fn batch_grads(model: &Model, batch: &[Vec<u32>]) -> (f32, ModelGrads) {
    batch_grads_threads(model, batch, thread_count())
}

/// [`batch_grads`] with an explicit worker-thread count.
///
/// # Determinism
///
/// Same contract as [`batch_grads`]: results are bit-identical for
/// every `threads` value, including 1.
pub fn batch_grads_threads(model: &Model, batch: &[Vec<u32>], threads: usize) -> (f32, ModelGrads) {
    let per_seq: Vec<(f32, ModelGrads)> =
        aptq_tensor::parallel::run_indexed(batch.len(), threads.min(batch.len()), |i| {
            model.sequence_grads(&batch[i])
        });
    let mut iter = per_seq.into_iter();
    let (mut loss, mut grads) = iter.next().expect("non-empty batch");
    for (l, g) in iter {
        loss += l;
        grads.add_assign(&g);
    }
    (loss / batch.len() as f32, grads)
}

fn mean(xs: &[f32]) -> f32 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f32>() / xs.len() as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ModelConfig;
    use rand::Rng;

    #[test]
    fn run_memorizes_a_periodic_stream() {
        let cfg = ModelConfig::test_tiny(12);
        let mut model = Model::new(&cfg, 11);
        let trainer = Trainer::new(TrainerConfig {
            steps: 60,
            batch_size: 4,
            adam: AdamConfig {
                lr: 5e-3,
                ..AdamConfig::default()
            },
            log_every: 0,
        });
        // Deterministic repeating pattern: trivially learnable.
        let report = trainer.run(&mut model, |_| {
            (0..4)
                .map(|k| (0..10).map(|i| ((i + k) % 12) as u32).collect())
                .collect()
        });
        assert!(
            report.final_loss < report.initial_loss - 0.5,
            "training must reduce loss: {} -> {}",
            report.initial_loss,
            report.final_loss
        );
    }

    #[test]
    fn batch_grads_parallel_matches_sequential() {
        let cfg = ModelConfig::test_tiny(12);
        let model = Model::new(&cfg, 5);
        let mut rng = aptq_tensor::init::rng(0);
        let batch: Vec<Vec<u32>> = (0..9)
            .map(|_| (0..8).map(|_| rng.gen_range(0..12u32)).collect())
            .collect();
        let (loss_par, grads_par) = batch_grads(&model, &batch);
        // Sequential reference.
        let mut loss_seq = 0.0;
        let mut grads_seq: Option<ModelGrads> = None;
        for s in &batch {
            let (l, g) = model.sequence_grads(s);
            loss_seq += l;
            match &mut grads_seq {
                None => grads_seq = Some(g),
                Some(t) => t.add_assign(&g),
            }
        }
        loss_seq /= batch.len() as f32;
        let grads_seq = grads_seq.unwrap();
        assert!((loss_par - loss_seq).abs() < 1e-5);
        assert!(
            (grads_par.global_norm() - grads_seq.global_norm()).abs() < 1e-3,
            "parallel and sequential grads must agree"
        );
    }

    #[test]
    fn batch_grads_bit_identical_across_thread_counts() {
        let cfg = ModelConfig::test_tiny(12);
        let model = Model::new(&cfg, 7);
        let mut rng = aptq_tensor::init::rng(3);
        let batch: Vec<Vec<u32>> = (0..7)
            .map(|_| (0..9).map(|_| rng.gen_range(0..12u32)).collect())
            .collect();
        let (loss_1, grads_1) = batch_grads_threads(&model, &batch, 1);
        for threads in [2usize, 4, 8] {
            let (loss_n, grads_n) = batch_grads_threads(&model, &batch, threads);
            assert_eq!(loss_1, loss_n, "loss differs at {threads} threads");
            assert_eq!(
                grads_1.global_norm(),
                grads_n.global_norm(),
                "grads differ at {threads} threads"
            );
        }
    }
}
