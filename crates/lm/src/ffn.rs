//! SwiGLU feed-forward network (the LLaMA FFN) with manual backward.

use aptq_obs::Recorder;
use aptq_tensor::activation::{silu, silu_grad};
use aptq_tensor::Matrix;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

use crate::linear::{Linear, LinearOp};

/// SwiGLU feed-forward: `y = (silu(x·W_gate) ⊙ (x·W_up)) · W_down`,
/// generic over the linear operator `L` (fp32 [`Linear`] by default,
/// packed projections in `aptq_qmodel`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SwiGlu<L = Linear> {
    gate: L,
    up: L,
    down: L,
}

/// Forward cache for [`SwiGlu::backward`].
#[derive(Debug, Clone)]
pub struct SwiGluCache {
    /// Block input (post-RMSNorm), `T × d_model`.
    pub x: Matrix,
    /// Pre-activation gate values `x·W_gate`, `T × d_ff`.
    pub g: Matrix,
    /// Up-projection values `x·W_up`, `T × d_ff`.
    pub u: Matrix,
    /// Hidden activations `silu(g) ⊙ u` — the input to the down
    /// projection, `T × d_ff`.
    pub hidden: Matrix,
}

/// Gradients of the three projection weights.
#[derive(Debug, Clone)]
pub struct SwiGluGrads {
    /// Gradient of the gate projection.
    pub dgate: Matrix,
    /// Gradient of the up projection.
    pub dup: Matrix,
    /// Gradient of the down projection.
    pub ddown: Matrix,
}

impl<L: LinearOp> SwiGlu<L> {
    /// Assembles a SwiGLU FFN from prebuilt projections (the
    /// weight-install path used by the quantized stack).
    ///
    /// # Panics
    ///
    /// Panics if the projection shapes are inconsistent
    /// (`gate`/`up`: `d_model × d_ff`, `down`: `d_ff × d_model`).
    pub fn from_parts(gate: L, up: L, down: L) -> Self {
        let (d_model, d_ff) = (gate.d_in(), gate.d_out());
        assert!(
            up.d_in() == d_model && up.d_out() == d_ff,
            "SwiGlu: up projection shape mismatch"
        );
        assert!(
            down.d_in() == d_ff && down.d_out() == d_model,
            "SwiGlu: down projection shape mismatch"
        );
        SwiGlu { gate, up, down }
    }

    /// Mutable gate projection (optimizer / quantizer /
    /// fault-injection access).
    pub fn gate_mut(&mut self) -> &mut L {
        &mut self.gate
    }
    /// Mutable up projection.
    pub fn up_mut(&mut self) -> &mut L {
        &mut self.up
    }
    /// Mutable down projection.
    pub fn down_mut(&mut self) -> &mut L {
        &mut self.down
    }

    /// Gate projection.
    pub fn gate(&self) -> &L {
        &self.gate
    }
    /// Up projection.
    pub fn up(&self) -> &L {
        &self.up
    }
    /// Down projection.
    pub fn down(&self) -> &L {
        &self.down
    }

    /// Forward pass; returns `(output, cache)`.
    /// # Determinism
    ///
    /// Bit-identical at any `APTQ_THREADS` value: every matmul runs on
    /// the deterministic threadpool ([`aptq_tensor::parallel`]).
    pub fn forward(&self, x: &Matrix) -> (Matrix, SwiGluCache) {
        self.forward_opt(x, None)
    }

    /// [`forward`](SwiGlu::forward) with an optional recorder threaded
    /// into every projection's [`LinearOp::forward_into`] hook.
    ///
    /// # HotPath
    ///
    /// Allocation budget: gate/up/hidden/output matrices sized by the
    /// input, allocated once per call; the elementwise SwiGLU loop is
    /// heap-free.
    ///
    /// # Determinism
    ///
    /// Outputs *and counters* are bit-identical at any `APTQ_THREADS`
    /// value: matmuls run on the deterministic threadpool
    /// ([`aptq_tensor::parallel`]) and counters depend only on shapes.
    pub fn forward_opt(&self, x: &Matrix, mut rec: Option<&mut Recorder>) -> (Matrix, SwiGluCache) {
        let g = self.gate.forward_op(x, rec.as_deref_mut());
        let u = self.up.forward_op(x, rec.as_deref_mut());
        let mut hidden = Matrix::zeros(g.rows(), g.cols());
        for (o, (&gv, &uv)) in hidden
            .as_mut_slice()
            .iter_mut()
            .zip(g.as_slice().iter().zip(u.as_slice()))
        {
            *o = silu(gv) * uv;
        }
        let y = self.down.forward_op(&hidden, rec);
        (
            y,
            SwiGluCache {
                // audit:allow(alloc): the cache owns its input copy for backward
                x: x.clone(),
                g,
                u,
                hidden,
            },
        )
    }
}

impl SwiGlu {
    /// Creates a SwiGLU FFN with random weights.
    pub fn new(d_model: usize, d_ff: usize, rng: &mut StdRng) -> Self {
        SwiGlu {
            gate: Linear::new(d_model, d_ff, rng),
            up: Linear::new(d_model, d_ff, rng),
            down: Linear::new(d_ff, d_model, rng),
        }
    }

    /// Backward pass; returns `(dx, grads)`.
    /// # Determinism
    ///
    /// Bit-identical at any `APTQ_THREADS` value: every matmul runs on
    /// the deterministic threadpool ([`aptq_tensor::parallel`]).
    pub fn backward(&self, cache: &SwiGluCache, dy: &Matrix) -> (Matrix, SwiGluGrads) {
        let (dhidden, ddown) = self.down.backward(&cache.hidden, dy);
        // hidden = silu(g) ⊙ u
        let mut dg = Matrix::zeros(dhidden.rows(), dhidden.cols());
        let mut du = Matrix::zeros(dhidden.rows(), dhidden.cols());
        for idx in 0..dhidden.len() {
            let gh = cache.g.as_slice()[idx];
            let uh = cache.u.as_slice()[idx];
            let d = dhidden.as_slice()[idx];
            dg.as_mut_slice()[idx] = d * uh * silu_grad(gh);
            du.as_mut_slice()[idx] = d * silu(gh);
        }
        let (dx_g, dgate) = self.gate.backward(&cache.x, &dg);
        let (dx_u, dup) = self.up.backward(&cache.x, &du);
        let mut dx = dx_g;
        dx.add_assign(&dx_u);
        (dx, SwiGluGrads { dgate, dup, ddown })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aptq_tensor::init;

    #[test]
    fn forward_shapes() {
        let ffn = SwiGlu::new(8, 16, &mut init::rng(0));
        let x = init::normal(3, 8, 1.0, &mut init::rng(1));
        let (y, cache) = ffn.forward(&x);
        assert_eq!(y.shape(), (3, 8));
        assert_eq!(cache.hidden.shape(), (3, 16));
        assert!(y.all_finite());
    }

    #[test]
    fn zero_input_gives_zero_output() {
        let ffn = SwiGlu::new(4, 8, &mut init::rng(2));
        let x = Matrix::zeros(2, 4);
        let (y, _) = ffn.forward(&x);
        assert!(y.as_slice().iter().all(|&v| v.abs() < 1e-6));
    }

    #[test]
    fn backward_matches_finite_difference() {
        let mut ffn = SwiGlu::new(6, 10, &mut init::rng(3));
        let x = init::normal(2, 6, 1.0, &mut init::rng(4));
        let dy = init::normal(2, 6, 1.0, &mut init::rng(5));
        let (_, cache) = ffn.forward(&x);
        let (dx, grads) = ffn.backward(&cache, &dy);
        let eps = 1e-2f32;

        // Input gradient.
        for (i, j) in [(0, 0), (1, 5), (0, 3)] {
            let mut xp = x.clone();
            xp[(i, j)] += eps;
            let mut xm = x.clone();
            xm[(i, j)] -= eps;
            let fd = (ffn.forward(&xp).0.hadamard(&dy).sum()
                - ffn.forward(&xm).0.hadamard(&dy).sum())
                / (2.0 * eps);
            assert!((dx[(i, j)] - fd).abs() < 2e-2 * (1.0 + fd.abs()));
        }

        // Weight gradients: one entry per projection.
        for which in ["gate", "up", "down"] {
            let (i, j) = (1, 2);
            let grad = match which {
                "gate" => grads.dgate[(i, j)],
                "up" => grads.dup[(i, j)],
                _ => grads.ddown[(i, j)],
            };
            fn w<'a>(f: &'a mut SwiGlu, which: &str) -> &'a mut Matrix {
                match which {
                    "gate" => f.gate_mut().weight_mut(),
                    "up" => f.up_mut().weight_mut(),
                    _ => f.down_mut().weight_mut(),
                }
            }
            let orig = w(&mut ffn, which)[(i, j)];
            w(&mut ffn, which)[(i, j)] = orig + eps;
            let lp = ffn.forward(&x).0.hadamard(&dy).sum();
            w(&mut ffn, which)[(i, j)] = orig - eps;
            let lm = ffn.forward(&x).0.hadamard(&dy).sum();
            w(&mut ffn, which)[(i, j)] = orig;
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (grad - fd).abs() < 2e-2 * (1.0 + fd.abs()),
                "{which}({i},{j}): {grad} vs {fd}"
            );
        }
    }

    #[test]
    fn hidden_cache_matches_down_input() {
        // The quantizer uses cache.hidden as the calibration input of the
        // down projection; verify y == hidden · W_down exactly.
        let ffn = SwiGlu::new(4, 6, &mut init::rng(6));
        let x = init::normal(3, 4, 1.0, &mut init::rng(7));
        let (y, cache) = ffn.forward(&x);
        let y2 = ffn.down().forward(&cache.hidden);
        assert_eq!(y, y2);
    }
}
