//! Activation capture for calibration.
//!
//! Post-training quantization needs the intermediate activations of a
//! calibration run:
//!
//! - GPTQ consumes each linear layer's **input** (`H = 2XXᵀ`);
//! - APTQ additionally consumes the attention internals — per-head
//!   probability matrices, rotated queries/keys, values and the
//!   concatenated head outputs — to build the attention-aware Hessians
//!   of Eqs. (9)–(15).
//!
//! [`ModelCapture`] packages those quantities for one calibration
//! sequence. The quantization crate accumulates Hessians sample-by-sample
//! so memory stays proportional to one sequence, not the whole set.

use aptq_tensor::Matrix;

use crate::block::BlockForwardCache;

/// Intermediate activations of one transformer block for one sequence.
#[derive(Debug, Clone)]
pub struct BlockCapture {
    /// Input to the attention projections (post-RMSNorm), `T × d_model`.
    /// This is the GPTQ calibration input for `q/k/v_proj`.
    pub attn_input: Matrix,
    /// Rotated queries, `T × d_model`.
    pub q_rot: Matrix,
    /// Rotated keys, `T × d_model`.
    pub k_rot: Matrix,
    /// Values, `T × d_model`.
    pub v: Matrix,
    /// Per-head causal attention probabilities, each `T × T`.
    pub probs: Vec<Matrix>,
    /// Concatenated head outputs — calibration input for `o_proj`,
    /// `T × d_model`.
    pub concat: Matrix,
    /// Input to the FFN projections (post-RMSNorm), `T × d_model`.
    /// Calibration input for `gate/up_proj`.
    pub ffn_input: Matrix,
    /// Hidden FFN activations — calibration input for `down_proj`,
    /// `T × d_ff`.
    pub ffn_hidden: Matrix,
}

impl From<BlockForwardCache> for BlockCapture {
    fn from(c: BlockForwardCache) -> Self {
        BlockCapture {
            attn_input: c.attn.x,
            q_rot: c.attn.q_rot,
            k_rot: c.attn.k_rot,
            v: c.attn.v,
            probs: c.attn.probs,
            concat: c.attn.concat,
            ffn_input: c.ffn.x,
            ffn_hidden: c.ffn.hidden,
        }
    }
}

/// Capture of a full forward pass: one [`BlockCapture`] per layer.
#[derive(Debug, Clone)]
pub struct ModelCapture {
    /// Per-block captures, index = block index.
    pub blocks: Vec<BlockCapture>,
}

impl ModelCapture {
    /// Number of captured blocks.
    pub fn n_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Sequence length of the captured run.
    ///
    /// # Panics
    ///
    /// Panics if the capture is empty.
    pub fn seq_len(&self) -> usize {
        self.blocks
            .first()
            .expect("capture must contain at least one block")
            .attn_input
            .rows()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capture_reports_shape() {
        let block = BlockCapture {
            attn_input: Matrix::zeros(5, 8),
            q_rot: Matrix::zeros(5, 8),
            k_rot: Matrix::zeros(5, 8),
            v: Matrix::zeros(5, 8),
            probs: vec![Matrix::zeros(5, 5); 2],
            concat: Matrix::zeros(5, 8),
            ffn_input: Matrix::zeros(5, 8),
            ffn_hidden: Matrix::zeros(5, 16),
        };
        let cap = ModelCapture {
            blocks: vec![block.clone(), block],
        };
        assert_eq!(cap.n_blocks(), 2);
        assert_eq!(cap.seq_len(), 5);
    }
}
