//! Root-mean-square layer normalization (the LLaMA norm) with backward.

use aptq_tensor::Matrix;
use serde::{Deserialize, Serialize};

/// RMSNorm: `y = g ⊙ x / rms(x)` with `rms(x) = sqrt(mean(x²) + ε)`.
///
/// # Example
///
/// ```
/// use aptq_lm::rmsnorm::RmsNorm;
/// use aptq_tensor::Matrix;
///
/// let norm = RmsNorm::new(4, 1e-5);
/// let x = Matrix::from_rows(&[&[2.0, -2.0, 2.0, -2.0]]);
/// let (y, _) = norm.forward(&x);
/// // rms = 2, gain = 1 → all entries ±1.
/// assert!((y[(0, 0)] - 1.0).abs() < 1e-4);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RmsNorm {
    gain: Vec<f32>,
    eps: f32,
}

/// Cached forward quantities needed by [`RmsNorm::backward`].
#[derive(Debug, Clone)]
pub struct RmsNormCache {
    /// Input of the forward pass.
    pub x: Matrix,
    /// Per-row reciprocal RMS values.
    pub inv_rms: Vec<f32>,
}

impl RmsNorm {
    /// Creates an RMSNorm over `dim` features with unit gain.
    pub fn new(dim: usize, eps: f32) -> Self {
        RmsNorm {
            gain: vec![1.0; dim],
            eps,
        }
    }

    /// Feature dimension.
    pub fn dim(&self) -> usize {
        self.gain.len()
    }

    /// Immutable gain vector.
    pub fn gain(&self) -> &[f32] {
        &self.gain
    }

    /// Mutable gain vector (trained parameter).
    pub fn gain_mut(&mut self) -> &mut [f32] {
        &mut self.gain
    }

    /// Forward pass over a `(tokens × dim)` activation matrix.
    ///
    /// Returns the normalized output and the cache for [`backward`].
    ///
    /// [`backward`]: RmsNorm::backward
    ///
    /// # HotPath
    ///
    /// Allocation budget: one output matrix and one per-row scale
    /// vector per call.
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != dim`.
    pub fn forward(&self, x: &Matrix) -> (Matrix, RmsNormCache) {
        assert_eq!(x.cols(), self.gain.len(), "RmsNorm: dimension mismatch");
        let n = x.cols() as f32;
        // audit:allow(alloc): output matrix, one per call (the budgeted scratch)
        let mut out = x.clone();
        // audit:allow(alloc): per-row scale vector, one per call (the budgeted scratch)
        let mut inv_rms = Vec::with_capacity(x.rows());
        for i in 0..x.rows() {
            let row = out.row_mut(i);
            let ms: f32 = row.iter().map(|&v| v * v).sum::<f32>() / n;
            let inv = 1.0 / (ms + self.eps).sqrt();
            // audit:allow(alloc): appends into the preallocated per-call vector
            inv_rms.push(inv);
            for (v, &g) in row.iter_mut().zip(self.gain.iter()) {
                *v = *v * inv * g;
            }
        }
        (
            out,
            RmsNormCache {
                // audit:allow(alloc): the cache owns its input copy for backward
                x: x.clone(),
                inv_rms,
            },
        )
    }

    /// Backward pass.
    ///
    /// Returns `(dx, dgain)` for upstream gradient `dy`.
    ///
    /// With `r = inv_rms`, `x̂ = x·r`: `y = g ⊙ x̂`, and
    /// `dx = r·(g⊙dy − x̂ · mean(x̂ ⊙ g ⊙ dy))`.
    ///
    /// # Panics
    ///
    /// Panics if `dy`'s shape does not match the cached input shape.
    pub fn backward(&self, cache: &RmsNormCache, dy: &Matrix) -> (Matrix, Vec<f32>) {
        assert_eq!(
            dy.shape(),
            cache.x.shape(),
            "RmsNorm backward: shape mismatch"
        );
        let n = self.gain.len() as f32;
        let mut dx = Matrix::zeros(dy.rows(), dy.cols());
        let mut dgain = vec![0.0f32; self.gain.len()];
        for i in 0..dy.rows() {
            let r = cache.inv_rms[i];
            let x_row = cache.x.row(i);
            let dy_row = dy.row(i);
            // mean over features of x̂ ⊙ g ⊙ dy
            let mut dot = 0.0f32;
            for j in 0..x_row.len() {
                let xhat = x_row[j] * r;
                dot += xhat * self.gain[j] * dy_row[j];
                dgain[j] += xhat * dy_row[j];
            }
            dot /= n;
            let dx_row = dx.row_mut(i);
            for j in 0..x_row.len() {
                let xhat = x_row[j] * r;
                dx_row[j] = r * (self.gain[j] * dy_row[j] - xhat * dot);
            }
        }
        (dx, dgain)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aptq_tensor::init;

    #[test]
    fn output_has_unit_rms_with_unit_gain() {
        let norm = RmsNorm::new(8, 1e-6);
        let x = init::normal(3, 8, 3.0, &mut init::rng(0));
        let (y, _) = norm.forward(&x);
        for i in 0..3 {
            let ms: f32 = y.row(i).iter().map(|&v| v * v).sum::<f32>() / 8.0;
            assert!((ms - 1.0).abs() < 1e-3, "row {i}: rms² = {ms}");
        }
    }

    #[test]
    fn gain_scales_output() {
        let mut norm = RmsNorm::new(4, 1e-6);
        norm.gain_mut()[2] = 5.0;
        let x = Matrix::from_rows(&[&[1.0, 1.0, 1.0, 1.0]]);
        let (y, _) = norm.forward(&x);
        assert!((y[(0, 2)] / y[(0, 0)] - 5.0).abs() < 1e-4);
    }

    #[test]
    fn backward_matches_finite_difference() {
        let mut norm = RmsNorm::new(5, 1e-5);
        for (j, g) in norm.gain_mut().iter_mut().enumerate() {
            *g = 1.0 + 0.1 * j as f32;
        }
        let x = init::normal(2, 5, 1.0, &mut init::rng(1));
        let (_, cache) = norm.forward(&x);
        let dy = init::normal(2, 5, 1.0, &mut init::rng(2));
        let (dx, dgain) = norm.backward(&cache, &dy);

        let loss = |norm: &RmsNorm, x: &Matrix| -> f32 {
            let (y, _) = norm.forward(x);
            y.hadamard(&dy).sum()
        };
        let eps = 1e-3f32;
        // dx check.
        for (i, j) in [(0, 0), (1, 3), (0, 4)] {
            let mut xp = x.clone();
            xp[(i, j)] += eps;
            let mut xm = x.clone();
            xm[(i, j)] -= eps;
            let fd = (loss(&norm, &xp) - loss(&norm, &xm)) / (2.0 * eps);
            assert!(
                (dx[(i, j)] - fd).abs() < 1e-2,
                "dx({i},{j}): {} vs {fd}",
                dx[(i, j)]
            );
        }
        // dgain check.
        for (j, &dg) in dgain.iter().enumerate() {
            let orig = norm.gain()[j];
            norm.gain_mut()[j] = orig + eps;
            let lp = loss(&norm, &x);
            norm.gain_mut()[j] = orig - eps;
            let lm = loss(&norm, &x);
            norm.gain_mut()[j] = orig;
            let fd = (lp - lm) / (2.0 * eps);
            assert!((dg - fd).abs() < 1e-2, "dgain[{j}]: {dg} vs {fd}");
        }
    }

    #[test]
    fn handles_zero_rows() {
        let norm = RmsNorm::new(3, 1e-5);
        let x = Matrix::zeros(1, 3);
        let (y, _) = norm.forward(&x);
        assert!(y.all_finite());
        assert_eq!(y.as_slice(), &[0.0, 0.0, 0.0]);
    }
}
