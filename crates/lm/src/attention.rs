//! Multi-head causal self-attention with RoPE, full manual backward, and
//! the internal captures APTQ's attention-aware Hessians consume.

use aptq_obs::Recorder;
use aptq_tensor::activation::{softmax_rows, softmax_vjp_row};
use aptq_tensor::Matrix;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

use crate::linear::{Linear, LinearOp};
use crate::rope::RopeTable;

/// Multi-head causal self-attention (`Q`, `K`, `V`, `O` projections),
/// generic over the linear operator `L`.
///
/// Shapes: activations are `(T × d_model)`; each projection is a
/// bias-free [`LinearOp`] of `d_model × d_model`; heads are contiguous
/// column blocks of width `d_head`. The default `L = `[`Linear`] is the
/// trainable fp32 stack; `aptq_qmodel` instantiates the same forward
/// with packed projections.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiHeadAttention<L = Linear> {
    wq: L,
    wk: L,
    wv: L,
    wo: L,
    n_heads: usize,
    d_head: usize,
    scale: f32,
}

/// Everything the backward pass and the APTQ Hessian builders need from
/// one attention forward pass.
#[derive(Debug, Clone)]
pub struct AttentionCache {
    /// Input to the attention block (post-RMSNorm), `T × d_model`.
    pub x: Matrix,
    /// Rotated queries, `T × d_model` (heads concatenated).
    pub q_rot: Matrix,
    /// Rotated keys, `T × d_model`.
    pub k_rot: Matrix,
    /// Values (no rotation), `T × d_model`.
    pub v: Matrix,
    /// Per-head attention probability matrices, each `T × T`, causal.
    pub probs: Vec<Matrix>,
    /// Concatenated head outputs — the input to the `O` projection,
    /// `T × d_model`.
    pub concat: Matrix,
}

/// Gradients of the four projection weights.
#[derive(Debug, Clone)]
pub struct AttentionGrads {
    /// Gradient of the query projection.
    pub dwq: Matrix,
    /// Gradient of the key projection.
    pub dwk: Matrix,
    /// Gradient of the value projection.
    pub dwv: Matrix,
    /// Gradient of the output projection.
    pub dwo: Matrix,
}

impl<L: LinearOp> MultiHeadAttention<L> {
    /// Assembles an attention block from four prebuilt projections
    /// (the weight-install path used by the quantized stack).
    ///
    /// # Panics
    ///
    /// Panics if the projections are not square with a common width
    /// divisible by `n_heads`.
    pub fn from_parts(wq: L, wk: L, wv: L, wo: L, n_heads: usize) -> Self {
        let d_model = wq.d_in();
        for p in [&wq, &wk, &wv, &wo] {
            assert!(
                p.d_in() == d_model && p.d_out() == d_model,
                "attention projections must all be {d_model}×{d_model}"
            );
        }
        assert!(
            n_heads > 0 && d_model.is_multiple_of(n_heads),
            "n_heads must divide d_model"
        );
        let d_head = d_model / n_heads;
        MultiHeadAttention {
            wq,
            wk,
            wv,
            wo,
            n_heads,
            d_head,
            scale: 1.0 / (d_head as f32).sqrt(),
        }
    }

    /// Number of heads.
    pub fn n_heads(&self) -> usize {
        self.n_heads
    }

    /// Per-head dimension.
    pub fn d_head(&self) -> usize {
        self.d_head
    }

    /// Query projection.
    /// Mutable query projection (optimizer / quantizer /
    /// fault-injection access).
    pub fn wq_mut(&mut self) -> &mut L {
        &mut self.wq
    }
    /// Mutable key projection.
    pub fn wk_mut(&mut self) -> &mut L {
        &mut self.wk
    }
    /// Mutable value projection.
    pub fn wv_mut(&mut self) -> &mut L {
        &mut self.wv
    }
    /// Mutable output projection.
    pub fn wo_mut(&mut self) -> &mut L {
        &mut self.wo
    }

    pub fn wq(&self) -> &L {
        &self.wq
    }
    /// Key projection.
    pub fn wk(&self) -> &L {
        &self.wk
    }
    /// Value projection.
    pub fn wv(&self) -> &L {
        &self.wv
    }
    /// Output projection.
    pub fn wo(&self) -> &L {
        &self.wo
    }

    /// Forward pass over a `(T × d_model)` activation matrix with causal
    /// masking and RoPE.
    ///
    /// Returns `(output, cache)`; the cache feeds both [`backward`] and
    /// the APTQ attention-Hessian builders.
    ///
    /// [`backward`]: MultiHeadAttention::backward
    ///
    /// # HotPath
    ///
    /// Allocation budget: Q/K/V/score/cache matrices sized by the
    /// sequence, allocated once per call; inner loops are heap-free.
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != d_model` or the sequence exceeds the RoPE
    /// table.
    /// # Determinism
    ///
    /// Bit-identical at any `APTQ_THREADS` value: every matmul runs on
    /// the deterministic threadpool ([`aptq_tensor::parallel`]).
    pub fn forward(&self, x: &Matrix, rope: &RopeTable) -> (Matrix, AttentionCache) {
        self.forward_opt(x, rope, None)
    }

    /// [`forward`](MultiHeadAttention::forward) with an optional
    /// recorder threaded into every projection's
    /// [`LinearOp::forward_into`] hook (packed operators count their
    /// unpacking work there; fp32 records nothing).
    ///
    /// # HotPath
    ///
    /// Allocation budget: Q/K/V/score/cache matrices sized by the
    /// sequence, allocated once per call; inner loops are heap-free.
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != d_model` or the sequence exceeds the RoPE
    /// table.
    /// # Determinism
    ///
    /// Outputs *and counters* are bit-identical at any `APTQ_THREADS`
    /// value: matmuls run on the deterministic threadpool
    /// ([`aptq_tensor::parallel`]) and counters depend only on shapes.
    pub fn forward_opt(
        &self,
        x: &Matrix,
        rope: &RopeTable,
        mut rec: Option<&mut Recorder>,
    ) -> (Matrix, AttentionCache) {
        let t = x.rows();
        let d_model = self.wq.d_in();
        assert_eq!(x.cols(), d_model, "attention: input width mismatch");

        let mut q = self.wq.forward_op(x, rec.as_deref_mut());
        let mut k = self.wk.forward_op(x, rec.as_deref_mut());
        let v = self.wv.forward_op(x, rec.as_deref_mut());

        // Rotate queries and keys head-by-head.
        for pos in 0..t {
            for h in 0..self.n_heads {
                let lo = h * self.d_head;
                let hi = lo + self.d_head;
                rope.apply_row(&mut q.row_mut(pos)[lo..hi], pos);
                rope.apply_row(&mut k.row_mut(pos)[lo..hi], pos);
            }
        }

        // audit:allow(alloc): once-per-call cache of per-head prob matrices
        let mut probs = Vec::with_capacity(self.n_heads);
        let mut concat = Matrix::zeros(t, d_model);
        for h in 0..self.n_heads {
            let lo = h * self.d_head;
            let hi = lo + self.d_head;
            let qh = q.slice_cols(lo, hi);
            let kh = k.slice_cols(lo, hi);
            let vh = v.slice_cols(lo, hi);
            // scores = q kᵀ / √d, causal mask.
            let mut scores = qh.matmul_nt(&kh);
            scores.scale_assign(self.scale);
            for i in 0..t {
                let row = scores.row_mut(i);
                for val in row.iter_mut().skip(i + 1) {
                    *val = f32::NEG_INFINITY;
                }
            }
            softmax_rows(&mut scores);
            let head = scores.matmul(&vh);
            concat.set_block(0, lo, &head);
            // audit:allow(alloc): moves the head's score matrix into the cache
            probs.push(scores);
        }

        let out = self.wo.forward_op(&concat, rec);
        let cache = AttentionCache {
            // audit:allow(alloc): the cache owns its input copy for backward
            x: x.clone(),
            q_rot: q,
            k_rot: k,
            v,
            probs,
            concat,
        };
        (out, cache)
    }
}

impl MultiHeadAttention {
    /// Creates an attention block with random weights.
    ///
    /// # Panics
    ///
    /// Panics if `n_heads` does not divide `d_model`.
    pub fn new(d_model: usize, n_heads: usize, rng: &mut StdRng) -> Self {
        assert!(
            n_heads > 0 && d_model.is_multiple_of(n_heads),
            "n_heads must divide d_model"
        );
        MultiHeadAttention::from_parts(
            Linear::new(d_model, d_model, rng),
            Linear::new(d_model, d_model, rng),
            Linear::new(d_model, d_model, rng),
            Linear::new(d_model, d_model, rng),
            n_heads,
        )
    }

    /// Backward pass.
    ///
    /// Given the upstream gradient `dy` (`T × d_model`) and the forward
    /// cache, returns `(dx, grads)`.
    ///
    /// # Panics
    ///
    /// Panics if `dy`'s shape does not match the cached activation
    /// shape `(T, d_model)`.
    /// # Determinism
    ///
    /// Bit-identical at any `APTQ_THREADS` value: every matmul runs on
    /// the deterministic threadpool ([`aptq_tensor::parallel`]).
    pub fn backward(
        &self,
        cache: &AttentionCache,
        dy: &Matrix,
        rope: &RopeTable,
    ) -> (Matrix, AttentionGrads) {
        let t = cache.x.rows();
        let d_model = self.wq.d_in();
        assert_eq!(
            dy.shape(),
            (t, d_model),
            "attention backward: dy shape mismatch"
        );

        // O projection.
        let (dconcat, dwo) = self.wo.backward(&cache.concat, dy);

        let mut dq = Matrix::zeros(t, d_model);
        let mut dk = Matrix::zeros(t, d_model);
        let mut dv = Matrix::zeros(t, d_model);

        for h in 0..self.n_heads {
            let lo = h * self.d_head;
            let hi = lo + self.d_head;
            let p = &cache.probs[h];
            let qh = cache.q_rot.slice_cols(lo, hi);
            let kh = cache.k_rot.slice_cols(lo, hi);
            let vh = cache.v.slice_cols(lo, hi);
            let dhead = dconcat.slice_cols(lo, hi);

            // head = P · V
            let dp = dhead.matmul_nt(&vh); // T×T
            let dvh = p.matmul_tn(&dhead); // T×dh

            // softmax backward (row-wise VJP); masked entries have p=0 so
            // their gradient vanishes automatically.
            let mut dscores = Matrix::zeros(t, t);
            for i in 0..t {
                let g = softmax_vjp_row(p.row(i), dp.row(i));
                dscores.row_mut(i).copy_from_slice(&g);
            }
            dscores.scale_assign(self.scale);

            // scores = q kᵀ
            let dqh = dscores.matmul(&kh); // T×dh
            let dkh = dscores.matmul_tn(&qh); // T×dh

            dq.set_block(0, lo, &dqh);
            dk.set_block(0, lo, &dkh);
            dv.set_block(0, lo, &dvh);
        }

        // Undo RoPE on gradient (the rotation is orthogonal: Jᵀ = R(−θ)).
        for pos in 0..t {
            for h in 0..self.n_heads {
                let lo = h * self.d_head;
                let hi = lo + self.d_head;
                rope.apply_row_inverse(&mut dq.row_mut(pos)[lo..hi], pos);
                rope.apply_row_inverse(&mut dk.row_mut(pos)[lo..hi], pos);
            }
        }

        let (dx_q, dwq) = self.wq.backward(&cache.x, &dq);
        let (dx_k, dwk) = self.wk.backward(&cache.x, &dk);
        let (dx_v, dwv) = self.wv.backward(&cache.x, &dv);

        let mut dx = dx_q;
        dx.add_assign(&dx_k);
        dx.add_assign(&dx_v);

        (dx, AttentionGrads { dwq, dwk, dwv, dwo })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aptq_tensor::init;

    fn setup(
        t: usize,
        d: usize,
        heads: usize,
        seed: u64,
    ) -> (MultiHeadAttention, Matrix, RopeTable) {
        let mut rng = init::rng(seed);
        let attn = MultiHeadAttention::new(d, heads, &mut rng);
        let x = init::normal(t, d, 1.0, &mut rng);
        let rope = RopeTable::new(d / heads, 64, 10_000.0);
        (attn, x, rope)
    }

    #[test]
    fn forward_shapes() {
        let (attn, x, rope) = setup(5, 8, 2, 0);
        let (y, cache) = attn.forward(&x, &rope);
        assert_eq!(y.shape(), (5, 8));
        assert_eq!(cache.probs.len(), 2);
        assert_eq!(cache.probs[0].shape(), (5, 5));
        assert_eq!(cache.concat.shape(), (5, 8));
        assert!(y.all_finite());
    }

    #[test]
    fn attention_is_causal() {
        // Changing a future token must not affect earlier outputs.
        let (attn, x, rope) = setup(6, 8, 2, 1);
        let (y1, _) = attn.forward(&x, &rope);
        let mut x2 = x.clone();
        for v in x2.row_mut(5) {
            *v += 10.0;
        }
        let (y2, _) = attn.forward(&x2, &rope);
        for i in 0..5 {
            for j in 0..8 {
                assert!(
                    (y1[(i, j)] - y2[(i, j)]).abs() < 1e-5,
                    "position {i} changed when future token was perturbed"
                );
            }
        }
        // Last position must change.
        assert!((0..8).any(|j| (y1[(5, j)] - y2[(5, j)]).abs() > 1e-4));
    }

    #[test]
    fn prob_rows_are_causal_distributions() {
        let (attn, x, rope) = setup(5, 8, 2, 2);
        let (_, cache) = attn.forward(&x, &rope);
        for p in &cache.probs {
            for i in 0..5 {
                let sum: f32 = p.row(i).iter().sum();
                assert!((sum - 1.0).abs() < 1e-5);
                for j in i + 1..5 {
                    assert_eq!(p[(i, j)], 0.0, "future attention at ({i},{j})");
                }
            }
        }
    }

    #[test]
    fn first_token_attends_only_to_itself() {
        let (attn, x, rope) = setup(4, 8, 2, 3);
        let (_, cache) = attn.forward(&x, &rope);
        for p in &cache.probs {
            assert!((p[(0, 0)] - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn backward_matches_finite_difference_on_input() {
        let (attn, x, rope) = setup(4, 8, 2, 4);
        let dy = init::normal(4, 8, 1.0, &mut init::rng(5));
        let (_, cache) = attn.forward(&x, &rope);
        let (dx, _) = attn.backward(&cache, &dy, &rope);
        let loss = |x: &Matrix| attn.forward(x, &rope).0.hadamard(&dy).sum();
        let eps = 1e-2f32;
        for (i, j) in [(0, 0), (1, 3), (3, 7), (2, 5)] {
            let mut xp = x.clone();
            xp[(i, j)] += eps;
            let mut xm = x.clone();
            xm[(i, j)] -= eps;
            let fd = (loss(&xp) - loss(&xm)) / (2.0 * eps);
            assert!(
                (dx[(i, j)] - fd).abs() < 2e-2 * (1.0 + fd.abs()),
                "dx({i},{j}): {} vs {fd}",
                dx[(i, j)]
            );
        }
    }

    #[test]
    fn backward_matches_finite_difference_on_weights() {
        let (mut attn, x, rope) = setup(3, 8, 2, 6);
        let dy = init::normal(3, 8, 1.0, &mut init::rng(7));
        let (_, cache) = attn.forward(&x, &rope);
        let (_, grads) = attn.backward(&cache, &dy, &rope);
        let eps = 1e-2f32;

        // One entry from each projection.
        let checks: [(&str, (usize, usize)); 4] =
            [("q", (1, 2)), ("k", (3, 4)), ("v", (0, 5)), ("o", (6, 1))];
        for (which, (i, j)) in checks {
            let grad = match which {
                "q" => grads.dwq[(i, j)],
                "k" => grads.dwk[(i, j)],
                "v" => grads.dwv[(i, j)],
                _ => grads.dwo[(i, j)],
            };
            fn weight_mut<'a>(attn: &'a mut MultiHeadAttention, which: &str) -> &'a mut Matrix {
                match which {
                    "q" => attn.wq_mut().weight_mut(),
                    "k" => attn.wk_mut().weight_mut(),
                    "v" => attn.wv_mut().weight_mut(),
                    _ => attn.wo_mut().weight_mut(),
                }
            }
            let orig = weight_mut(&mut attn, which)[(i, j)];
            weight_mut(&mut attn, which)[(i, j)] = orig + eps;
            let lp = attn.forward(&x, &rope).0.hadamard(&dy).sum();
            weight_mut(&mut attn, which)[(i, j)] = orig - eps;
            let lm = attn.forward(&x, &rope).0.hadamard(&dy).sum();
            weight_mut(&mut attn, which)[(i, j)] = orig;
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (grad - fd).abs() < 2e-2 * (1.0 + fd.abs()),
                "dw{which}({i},{j}): {grad} vs {fd}"
            );
        }
    }

    #[test]
    fn single_token_sequence_works() {
        let (attn, _, rope) = setup(1, 8, 2, 8);
        let x = init::normal(1, 8, 1.0, &mut init::rng(9));
        let (y, cache) = attn.forward(&x, &rope);
        assert_eq!(y.shape(), (1, 8));
        assert!((cache.probs[0][(0, 0)] - 1.0).abs() < 1e-6);
    }
}
