//! Rotary position embeddings (RoPE) with exact backward.
//!
//! RoPE rotates each consecutive coordinate pair `(x₂ᵢ, x₂ᵢ₊₁)` of a
//! query/key head vector by a position-dependent angle
//! `θᵢ(pos) = pos · base^(−2i/d_head)`. The rotation is orthogonal, so the
//! backward pass is a rotation by the opposite angle.

use serde::{Deserialize, Serialize};

/// Precomputed cos/sin tables for rotary position embeddings.
///
/// # Example
///
/// ```
/// use aptq_lm::rope::RopeTable;
///
/// let rope = RopeTable::new(8, 32, 10_000.0);
/// let mut v = vec![1.0f32; 8];
/// rope.apply_row(&mut v, 0); // position 0 rotates by zero
/// assert!((v[0] - 1.0).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RopeTable {
    d_head: usize,
    max_seq: usize,
    /// `cos[pos * d_head/2 + i]`
    cos: Vec<f32>,
    /// `sin[pos * d_head/2 + i]`
    sin: Vec<f32>,
}

impl RopeTable {
    /// Builds tables for head dimension `d_head` (must be even) and
    /// positions `0..max_seq`.
    ///
    /// # Panics
    ///
    /// Panics if `d_head` is odd or zero.
    pub fn new(d_head: usize, max_seq: usize, theta: f32) -> Self {
        assert!(
            d_head > 0 && d_head.is_multiple_of(2),
            "RoPE requires even, positive d_head"
        );
        let half = d_head / 2;
        let mut cos = Vec::with_capacity(max_seq * half);
        let mut sin = Vec::with_capacity(max_seq * half);
        for pos in 0..max_seq {
            for i in 0..half {
                let freq = theta.powf(-2.0 * i as f32 / d_head as f32);
                let angle = pos as f32 * freq;
                cos.push(angle.cos());
                sin.push(angle.sin());
            }
        }
        RopeTable {
            d_head,
            max_seq,
            cos,
            sin,
        }
    }

    /// Head dimension the table was built for.
    pub fn d_head(&self) -> usize {
        self.d_head
    }

    /// Maximum position (exclusive).
    pub fn max_seq(&self) -> usize {
        self.max_seq
    }

    /// Rotates one head vector in place for the given position.
    ///
    /// # HotPath
    ///
    /// Allocation budget: zero — rotation is in place from the
    /// precomputed table.
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != d_head` or `pos >= max_seq`.
    pub fn apply_row(&self, row: &mut [f32], pos: usize) {
        assert_eq!(row.len(), self.d_head, "RoPE: row length mismatch");
        assert!(
            pos < self.max_seq,
            "RoPE: position {pos} beyond table {}",
            self.max_seq
        );
        let half = self.d_head / 2;
        let base = pos * half;
        for i in 0..half {
            let c = self.cos[base + i];
            let s = self.sin[base + i];
            let a = row[2 * i];
            let b = row[2 * i + 1];
            row[2 * i] = a * c - b * s;
            row[2 * i + 1] = a * s + b * c;
        }
    }

    /// Inverse rotation (used by the backward pass): rotates by `−θ`.
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != d_head` or `pos >= max_seq`.
    pub fn apply_row_inverse(&self, row: &mut [f32], pos: usize) {
        assert_eq!(row.len(), self.d_head, "RoPE: row length mismatch");
        assert!(
            pos < self.max_seq,
            "RoPE: position {pos} beyond table {}",
            self.max_seq
        );
        let half = self.d_head / 2;
        let base = pos * half;
        for i in 0..half {
            let c = self.cos[base + i];
            let s = self.sin[base + i];
            let a = row[2 * i];
            let b = row[2 * i + 1];
            row[2 * i] = a * c + b * s;
            row[2 * i + 1] = -a * s + b * c;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn position_zero_is_identity() {
        let rope = RopeTable::new(6, 16, 10_000.0);
        let orig = [0.3f32, -0.7, 1.2, 0.4, -0.1, 0.9];
        let mut v = orig;
        rope.apply_row(&mut v, 0);
        for (a, b) in v.iter().zip(orig.iter()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn rotation_preserves_norm() {
        let rope = RopeTable::new(8, 32, 10_000.0);
        let orig = [1.0f32, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
        let norm0: f32 = orig.iter().map(|v| v * v).sum();
        for pos in [1, 7, 31] {
            let mut v = orig;
            rope.apply_row(&mut v, pos);
            let norm: f32 = v.iter().map(|x| x * x).sum();
            assert!((norm - norm0).abs() < 1e-3, "pos {pos}");
        }
    }

    #[test]
    fn inverse_undoes_rotation() {
        let rope = RopeTable::new(4, 16, 10_000.0);
        let orig = [0.5f32, -1.5, 2.5, 0.1];
        let mut v = orig;
        rope.apply_row(&mut v, 9);
        rope.apply_row_inverse(&mut v, 9);
        for (a, b) in v.iter().zip(orig.iter()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn relative_position_property() {
        // The defining RoPE property: ⟨R(p)q, R(p+k)x⟩ depends only on k.
        let rope = RopeTable::new(4, 64, 10_000.0);
        let q = [0.8f32, -0.2, 0.5, 1.1];
        let k = [0.3f32, 0.9, -0.4, 0.6];
        let dot_at = |p1: usize, p2: usize| {
            let mut a = q;
            let mut b = k;
            rope.apply_row(&mut a, p1);
            rope.apply_row(&mut b, p2);
            a.iter().zip(b.iter()).map(|(x, y)| x * y).sum::<f32>()
        };
        let d1 = dot_at(0, 5);
        let d2 = dot_at(10, 15);
        let d3 = dot_at(37, 42);
        assert!((d1 - d2).abs() < 1e-4);
        assert!((d2 - d3).abs() < 1e-4);
    }

    #[test]
    fn different_positions_rotate_differently() {
        let rope = RopeTable::new(4, 16, 10_000.0);
        let orig = [1.0f32, 0.0, 1.0, 0.0];
        let mut a = orig;
        let mut b = orig;
        rope.apply_row(&mut a, 1);
        rope.apply_row(&mut b, 2);
        assert!(a.iter().zip(b.iter()).any(|(x, y)| (x - y).abs() > 1e-4));
    }

    #[test]
    #[should_panic(expected = "beyond table")]
    fn position_out_of_range_panics() {
        let rope = RopeTable::new(4, 4, 10_000.0);
        let mut v = [0.0f32; 4];
        rope.apply_row(&mut v, 4);
    }
}
