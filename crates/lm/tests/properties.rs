//! Property-based tests for the transformer substrate.

use aptq_lm::{Model, ModelConfig};
use proptest::prelude::*;

fn tokens(vocab: usize, min_len: usize, max_len: usize) -> impl Strategy<Value = Vec<u32>> {
    proptest::collection::vec(0u32..vocab as u32, min_len..=max_len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn forward_always_finite(seq in tokens(16, 1, 20), seed in 0u64..50) {
        let model = Model::new(&ModelConfig::test_tiny(16), seed);
        let logits = model.forward(&seq);
        prop_assert_eq!(logits.shape(), (seq.len(), 16));
        prop_assert!(logits.all_finite());
    }

    #[test]
    fn causality_holds_for_any_suffix_perturbation(
        seq in tokens(16, 3, 16),
        cut in 1usize..10,
    ) {
        let model = Model::new(&ModelConfig::test_tiny(16), 3);
        let cut = cut.min(seq.len() - 1);
        let logits_full = model.forward(&seq);
        // Change every token after `cut`.
        let mut altered = seq.clone();
        for t in altered.iter_mut().skip(cut) {
            *t = (*t + 7) % 16;
        }
        let logits_alt = model.forward(&altered);
        for i in 0..cut {
            for j in 0..16 {
                prop_assert!(
                    (logits_full[(i, j)] - logits_alt[(i, j)]).abs() < 1e-4,
                    "position {i} leaked future information"
                );
            }
        }
    }

    #[test]
    fn loss_is_positive_and_finite(seq in tokens(16, 2, 16)) {
        let model = Model::new(&ModelConfig::test_tiny(16), 5);
        let loss = model.sequence_loss(&seq);
        prop_assert!(loss.is_finite());
        prop_assert!(loss > 0.0);
    }

    #[test]
    fn grads_shapes_match_weights(seq in tokens(16, 2, 10)) {
        let model = Model::new(&ModelConfig::test_tiny(16), 6);
        let (_, grads) = model.sequence_grads(&seq);
        prop_assert_eq!(grads.embed.shape(), model.embed().shape());
        prop_assert_eq!(grads.lm_head.shape(), model.lm_head().shape());
        prop_assert_eq!(grads.blocks.len(), model.blocks().len());
        prop_assert!(grads.global_norm().is_finite());
    }

    #[test]
    fn capture_path_matches_plain_forward(seq in tokens(16, 1, 12)) {
        let model = Model::new(&ModelConfig::test_tiny(16), 7);
        let plain = model.forward(&seq);
        let (captured, cap) = model.forward_capture(&seq);
        prop_assert_eq!(cap.n_blocks(), model.blocks().len());
        for (a, b) in plain.as_slice().iter().zip(captured.as_slice()) {
            prop_assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn checkpoint_roundtrip_is_exact(seq in tokens(16, 1, 8), seed in 0u64..20) {
        let model = Model::new(&ModelConfig::test_tiny(16), seed);
        let restored = Model::from_json(&model.to_json().unwrap()).unwrap();
        prop_assert_eq!(model.forward(&seq), restored.forward(&seq));
    }

    #[test]
    fn attention_probs_are_causal_distributions(seq in tokens(16, 2, 12)) {
        let model = Model::new(&ModelConfig::test_tiny(16), 8);
        let (_, cap) = model.forward_capture(&seq);
        for block in &cap.blocks {
            for p in &block.probs {
                for i in 0..seq.len() {
                    let row_sum: f32 = p.row(i).iter().sum();
                    prop_assert!((row_sum - 1.0).abs() < 1e-4);
                    for j in i + 1..seq.len() {
                        prop_assert_eq!(p[(i, j)], 0.0);
                    }
                }
            }
        }
    }
}
