//! Seeded fuzzing of checkpoint deserialization: `Model::from_json`
//! and `Model::from_envelope_json` must never panic on truncated,
//! bit-flipped or type-mutated input — every corruption surfaces as a
//! structured `Err(LmError::Checkpoint(..))`.
//!
//! Mutations stay within printable ASCII so the input remains a valid
//! `&str` (byte-level corruption of the file is the chaos suite's
//! job); every fault site derives from one `StdRng` seed, so a failure
//! reproduces exactly.

use aptq_lm::{LmError, Model, ModelConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const PRINTABLE: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789{}[]\",:.-+eE ";

fn fixture_jsons() -> (String, String) {
    let model = Model::new(&ModelConfig::test_tiny(16), 17);
    (
        model.to_json().expect("serialize"),
        model.to_envelope_json().expect("seal"),
    )
}

/// Applies one seeded mutation; returns `None` if it happened to be an
/// identity transformation.
fn mutate(text: &str, rng: &mut StdRng) -> Option<String> {
    let bytes = text.as_bytes();
    match rng.gen_range(0..4u32) {
        // Truncate at a random char boundary.
        0 => {
            let mut cut = rng.gen_range(0..bytes.len());
            while cut > 0 && !text.is_char_boundary(cut) {
                cut -= 1;
            }
            (cut < bytes.len()).then(|| text[..cut].to_string())
        }
        // Overwrite one byte with a printable ASCII byte.
        1 => {
            let i = rng.gen_range(0..bytes.len());
            if !bytes[i].is_ascii() {
                return None;
            }
            let replacement = PRINTABLE[rng.gen_range(0..PRINTABLE.len())];
            if replacement == bytes[i] {
                return None;
            }
            let mut out = bytes.to_vec();
            out[i] = replacement;
            String::from_utf8(out).ok()
        }
        // Delete one ASCII byte (structural corruption).
        2 => {
            let i = rng.gen_range(0..bytes.len());
            if !bytes[i].is_ascii() {
                return None;
            }
            let mut out = bytes.to_vec();
            out.remove(i);
            String::from_utf8(out).ok()
        }
        // Type mutation: turn a number into a string/bool/null.
        _ => {
            let start = rng.gen_range(0..bytes.len());
            let hit = (start..bytes.len()).find(|&i| bytes[i].is_ascii_digit())?;
            let end = (hit..bytes.len())
                .find(|&i| !matches!(bytes[i], b'0'..=b'9' | b'.' | b'-' | b'+' | b'e' | b'E'))
                .unwrap_or(bytes.len());
            let replacement = ["\"oops\"", "true", "null", "[]"][rng.gen_range(0..4usize)];
            Some(format!("{}{}{}", &text[..hit], replacement, &text[end..]))
        }
    }
}

#[test]
fn envelope_load_never_panics_and_always_rejects_corruption() {
    let (_, envelope) = fixture_jsons();
    let mut rng = StdRng::seed_from_u64(0xF00D);
    let mut rejected = 0usize;
    for _ in 0..300 {
        let Some(mutated) = mutate(&envelope, &mut rng) else {
            continue;
        };
        if mutated == envelope {
            continue;
        }
        match Model::from_envelope_json(&mutated) {
            Err(LmError::Checkpoint(_)) => rejected += 1,
            Err(e) => panic!("wrong error class: {e}"),
            Ok(_) => panic!("corrupted envelope loaded cleanly"),
        }
    }
    assert!(rejected > 200, "only {rejected} mutations exercised");
}

#[test]
fn raw_checkpoint_load_never_panics() {
    let (raw, _) = fixture_jsons();
    let mut rng = StdRng::seed_from_u64(0xBEEF);
    let mut rejected = 0usize;
    for _ in 0..300 {
        let Some(mutated) = mutate(&raw, &mut rng) else {
            continue;
        };
        if mutated == raw {
            continue;
        }
        // A raw checkpoint has no checksum: a digit tweak may still
        // decode. The contract is weaker but absolute: Ok or
        // Err(Checkpoint), never a panic, never another error class.
        match Model::from_json(&mutated) {
            Ok(_) => {}
            Err(LmError::Checkpoint(_)) => rejected += 1,
            Err(e) => panic!("wrong error class: {e}"),
        }
    }
    assert!(rejected > 100, "only {rejected} mutations rejected");
}

#[test]
fn garbage_inputs_are_rejected_not_panicked() {
    for junk in [
        "",
        "\n",
        "{",
        "{\"magic\":\"aptq-artifact\"",
        "{\"magic\":\"aptq-artifact\"}\n",
        "{\"magic\":\"aptq-artifact\",\"version\":999}\n{}",
        "null",
        "[1,2,3]",
        "{\"embed\":null}",
    ] {
        assert!(
            matches!(Model::from_envelope_json(junk), Err(LmError::Checkpoint(_))),
            "envelope: {junk:?}"
        );
        assert!(
            matches!(Model::from_json(junk), Err(LmError::Checkpoint(_))),
            "raw: {junk:?}"
        );
    }
}
