//! Batched decode correctness: every sequence in a
//! [`BatchDecodeSession`] must produce logits **bit-identical**
//! (`assert_eq!`, not approximately) to running it alone in its own
//! [`DecodeSession`], for any batch size and any join/leave schedule.
//!
//! These tests run in the CI determinism loop at `APTQ_THREADS=1` and
//! `4` (see `ci/check.sh`): the batched projections stack B rows into
//! one matmul on the shared threadpool, and the row-band k-blocked
//! accumulation order makes each row independent of how many others
//! share the call.

use aptq_lm::decode::{
    generate_greedy_batched, generate_greedy_cached, BatchDecodeSession, DecodeSession,
};
use aptq_lm::{LmError, Model, ModelConfig};

fn model() -> Model {
    let cfg = ModelConfig {
        max_seq_len: 64,
        ..ModelConfig::test_tiny(16)
    };
    Model::new(&cfg, 42)
}

/// Deterministic per-sequence token stream `s`.
fn stream(s: usize, i: usize) -> u32 {
    ((i * 7 + s * 5 + 3) % 16) as u32
}

#[test]
fn batched_logits_bit_identical_to_solo_sessions() {
    let m = model();
    for &bsize in &[1usize, 3, 8] {
        let mut batch = BatchDecodeSession::new(&m);
        let slots: Vec<usize> = (0..bsize).map(|_| batch.join()).collect();
        let mut solos: Vec<DecodeSession<'_>> =
            (0..bsize).map(|_| DecodeSession::new(&m)).collect();
        for i in 0..20 {
            let tokens: Vec<(usize, u32)> = slots
                .iter()
                .enumerate()
                .map(|(s, &id)| (id, stream(s, i)))
                .collect();
            let logits = batch.step(&tokens).unwrap();
            for (s, solo) in solos.iter_mut().enumerate() {
                let alone = solo.feed(stream(s, i)).unwrap();
                assert_eq!(
                    logits.row(s),
                    &alone[..],
                    "batch size {bsize}, step {i}, sequence {s}: batched logits \
                     must be bit-identical to the solo session"
                );
            }
        }
        assert_eq!(batch.metrics().get("decode/batch/steps"), 20);
        assert_eq!(
            batch.metrics().get("decode/batch/tokens"),
            20 * bsize as u64
        );
        assert_eq!(
            batch.metrics().get("decode/batch/occupancy"),
            20 * bsize as u64
        );
    }
}

#[test]
fn ragged_join_leave_schedule_matches_solo_sessions() {
    // Sequences join and leave mid-flight; survivors must stay
    // bit-identical to their solo runs throughout, and a freed slot
    // reused by a new sequence must start from a clean cache.
    let m = model();
    let mut batch = BatchDecodeSession::new(&m);

    let a = batch.join();
    let b = batch.join();
    let c = batch.join();
    let mut solo_a = DecodeSession::new(&m);
    let mut solo_b = DecodeSession::new(&m);
    let mut solo_c = DecodeSession::new(&m);

    // Phase 1: all three decode together.
    for i in 0..6 {
        let logits = batch
            .step(&[(a, stream(0, i)), (b, stream(1, i)), (c, stream(2, i))])
            .unwrap();
        assert_eq!(logits.row(0), &solo_a.feed(stream(0, i)).unwrap()[..]);
        assert_eq!(logits.row(1), &solo_b.feed(stream(1, i)).unwrap()[..]);
        assert_eq!(logits.row(2), &solo_c.feed(stream(2, i)).unwrap()[..]);
    }

    // Phase 2: b leaves; a and c continue from their own positions.
    batch.leave(b).unwrap();
    assert_eq!(batch.active(), 2);
    for i in 6..11 {
        let logits = batch.step(&[(a, stream(0, i)), (c, stream(2, i))]).unwrap();
        assert_eq!(logits.row(0), &solo_a.feed(stream(0, i)).unwrap()[..]);
        assert_eq!(logits.row(1), &solo_c.feed(stream(2, i)).unwrap()[..]);
    }

    // Phase 3: a new sequence joins, reusing b's slot, and must decode
    // from position 0 as if the slot had never been used.
    let d = batch.join();
    assert_eq!(d, b, "lowest retired slot is reused");
    let mut solo_d = DecodeSession::new(&m);
    for i in 0..7 {
        let logits = batch
            .step(&[
                (a, stream(0, 11 + i)),
                (c, stream(2, 11 + i)),
                (d, stream(3, i)),
            ])
            .unwrap();
        assert_eq!(logits.row(0), &solo_a.feed(stream(0, 11 + i)).unwrap()[..]);
        assert_eq!(logits.row(1), &solo_c.feed(stream(2, 11 + i)).unwrap()[..]);
        assert_eq!(logits.row(2), &solo_d.feed(stream(3, i)).unwrap()[..]);
    }

    assert_eq!(batch.seq_len(a), Some(18));
    assert_eq!(batch.seq_len(c), Some(18));
    assert_eq!(batch.seq_len(d), Some(7));
    assert_eq!(batch.seq_len(b), Some(7), "d reused b's id");
    assert_eq!(batch.metrics().get("decode/batch/joins"), 4);
    assert_eq!(batch.metrics().get("decode/batch/leaves"), 1);
    // Occupancy: 6 steps × 3 + 5 steps × 2 + 7 steps × 3.
    assert_eq!(batch.metrics().get("decode/batch/occupancy"), 49);
}

#[test]
fn batch_row_order_does_not_change_logits() {
    // The same sequences listed in a different row order must get the
    // same (bit-identical) logits — rows are independent.
    let m = model();
    let mut fwd = BatchDecodeSession::new(&m);
    let mut rev = BatchDecodeSession::new(&m);
    let f: Vec<usize> = (0..3).map(|_| fwd.join()).collect();
    let r: Vec<usize> = (0..3).map(|_| rev.join()).collect();
    for i in 0..10 {
        let a = fwd
            .step(&[
                (f[0], stream(0, i)),
                (f[1], stream(1, i)),
                (f[2], stream(2, i)),
            ])
            .unwrap();
        let b = rev
            .step(&[
                (r[2], stream(2, i)),
                (r[1], stream(1, i)),
                (r[0], stream(0, i)),
            ])
            .unwrap();
        for s in 0..3 {
            assert_eq!(a.row(s), b.row(2 - s), "step {i}, sequence {s}");
        }
    }
}

#[test]
fn step_validates_the_whole_batch_before_touching_state() {
    let m = model();
    let mut batch = BatchDecodeSession::new(&m);
    let a = batch.join();

    assert!(matches!(batch.step(&[]), Err(LmError::EmptyInput)));
    assert!(matches!(
        batch.step(&[(a + 1, 0)]),
        Err(LmError::UnknownSeq { .. })
    ));
    assert!(matches!(
        batch.step(&[(a, 1), (a, 2)]),
        Err(LmError::DuplicateSeq { .. })
    ));
    assert!(matches!(
        batch.step(&[(a, 99)]),
        Err(LmError::TokenOutOfRange { .. })
    ));
    // A failed step must not have advanced the sequence.
    assert_eq!(batch.seq_len(a), Some(0));
    let mut solo = DecodeSession::new(&m);
    let logits = batch.step(&[(a, 5)]).unwrap();
    assert_eq!(logits.row(0), &solo.feed(5).unwrap()[..]);

    // Leaving twice is an error; stepping a retired id is an error.
    batch.leave(a).unwrap();
    assert!(matches!(batch.leave(a), Err(LmError::UnknownSeq { .. })));
    assert!(matches!(
        batch.step(&[(a, 1)]),
        Err(LmError::UnknownSeq { .. })
    ));
    assert_eq!(batch.active(), 0);
}

#[test]
fn step_rejects_full_sequences() {
    let cfg = ModelConfig::test_tiny(16); // max_seq_len = 32
    let m = Model::new(&cfg, 7);
    let mut batch = BatchDecodeSession::new(&m);
    let a = batch.join();
    for i in 0..32 {
        batch.step(&[(a, (i % 16) as u32)]).unwrap();
    }
    assert!(matches!(
        batch.step(&[(a, 0)]),
        Err(LmError::SequenceFull { .. })
    ));
}

#[test]
fn batch_cache_bytes_track_active_sequences() {
    let m = model();
    let mut batch = BatchDecodeSession::new(&m);
    let a = batch.join();
    let b = batch.join();
    assert_eq!(batch.cache_bytes(), 0);
    batch.step(&[(a, 1), (b, 2)]).unwrap();
    let per_row = 2 * 2 * 16 * 4; // layers × 2 matrices × d_model × 4B
    assert_eq!(batch.cache_bytes(), 2 * per_row);
    batch.step(&[(a, 3)]).unwrap();
    assert_eq!(batch.cache_bytes(), 3 * per_row);
    assert_eq!(
        batch.metrics().get("decode/batch/kv_bytes_moved"),
        batch.cache_bytes() as u64
    );
    batch.leave(b).unwrap();
    assert_eq!(batch.cache_bytes(), 2 * per_row, "b's rows stop counting");
}

#[test]
fn batched_greedy_generation_matches_solo_cached_generation() {
    let m = model();
    let prompts: Vec<Vec<u32>> = vec![
        vec![1, 2, 3],
        vec![5],
        vec![9, 8, 7, 6, 5, 4],
        vec![2, 2, 2, 2],
    ];
    // Unequal prompt lengths exercise the ragged prefill; unequal
    // completion times exercise mid-flight leave.
    let batched = generate_greedy_batched(&m, &prompts, 12).unwrap();
    for (i, prompt) in prompts.iter().enumerate() {
        let solo = generate_greedy_cached(&m, prompt, 12).unwrap();
        assert_eq!(batched[i], solo, "prompt {i}");
    }
}

#[test]
fn batched_greedy_generation_validates_inputs() {
    let m = model();
    assert!(matches!(
        generate_greedy_batched(&m, &[], 4),
        Err(LmError::EmptyInput)
    ));
    assert!(matches!(
        generate_greedy_batched(&m, &[vec![1], vec![]], 4),
        Err(LmError::EmptyInput)
    ));
    let long: Vec<u32> = (0..65).map(|i| (i % 16) as u32).collect();
    assert!(matches!(
        generate_greedy_batched(&m, &[vec![1], long], 4),
        Err(LmError::SequenceFull { .. })
    ));
}

#[test]
fn batched_greedy_generation_caps_at_context_boundary() {
    let m = model(); // max_seq_len = 64
    let exactly: Vec<u32> = (0..64).map(|i| (i % 16) as u32).collect();
    let nearly: Vec<u32> = (0..62).map(|i| (i % 16) as u32).collect();
    let prompts = vec![exactly.clone(), nearly.clone(), vec![3, 1]];
    let batched = generate_greedy_batched(&m, &prompts, 8).unwrap();
    assert_eq!(batched[0].len(), 65, "full context still predicts once");
    assert_eq!(batched[1].len(), 65, "capped at max_seq_len + 1");
    assert_eq!(batched[2].len(), 10);
    for (i, prompt) in prompts.iter().enumerate() {
        assert_eq!(batched[i], generate_greedy_cached(&m, prompt, 8).unwrap());
    }
}

/// Drives a poisoned batch of `bsize` sequences (victim poisoned after
/// `poison_after` steps) alongside a clean batch holding only the
/// survivors, asserting eviction, structured status, and bit-identical
/// peer logits at every step.
fn quarantine_isolation_case(bsize: usize, victim: usize, poison_after: usize) {
    let m = model();
    let mut chaos = BatchDecodeSession::new(&m);
    let ids: Vec<usize> = (0..bsize).map(|_| chaos.join()).collect();
    let mut clean = BatchDecodeSession::new(&m);
    let clean_ids: Vec<usize> = (0..bsize - 1).map(|_| clean.join()).collect();
    // Peer s (s != victim) maps onto clean sequence index…
    let peer_index = |s: usize| if s < victim { s } else { s - 1 };

    let mut evicted_at = None;
    for i in 0..12 {
        let mut toks: Vec<(usize, u32)> = Vec::new();
        for (s, &id) in ids.iter().enumerate() {
            if s == victim && evicted_at.is_some() {
                continue;
            }
            toks.push((id, stream(s, i)));
        }
        let chaos_logits = chaos.step(&toks).unwrap();
        let clean_toks: Vec<(usize, u32)> = (0..bsize)
            .filter(|&s| s != victim)
            .map(|s| (clean_ids[peer_index(s)], stream(s, i)))
            .collect();
        let clean_logits = clean.step(&clean_toks).unwrap();

        // Row r of each output answers toks[r]; map each surviving peer
        // to its row in both sessions and demand bit-identity.
        for (clean_row, &(_, _)) in clean_toks.iter().enumerate() {
            let s = (0..bsize).filter(|&s| s != victim).nth(clean_row).unwrap();
            let chaos_row = toks.iter().position(|&(id, _)| id == ids[s]).unwrap();
            assert_eq!(
                chaos_logits.row(chaos_row),
                clean_logits.row(clean_row),
                "B={bsize} step {i} seq {s}: peer logits must be bit-identical \
                 to a batch that never contained the poisoned sequence"
            );
        }

        if chaos.evicted_last_step().contains(&ids[victim]) {
            assert!(evicted_at.is_none(), "victim evicted twice");
            evicted_at = Some(i);
            assert!(!chaos.is_active(ids[victim]));
        }
        if i == poison_after && evicted_at.is_none() {
            chaos.poison_kv_cache(ids[victim]).unwrap();
        }
    }
    assert_eq!(
        evicted_at,
        Some(poison_after + 1),
        "poisoned cache must evict on the next step"
    );
    assert_eq!(
        chaos.metrics().get("decode/quarantine/evictions"),
        1,
        "one eviction, one counter"
    );
    assert_eq!(clean.metrics().get("decode/quarantine/evictions"), 0);
    assert_eq!(chaos.active(), bsize - 1);
}

#[test]
fn quarantine_isolates_peers_b3() {
    quarantine_isolation_case(3, 1, 2);
}

#[test]
fn quarantine_isolates_peers_b8() {
    quarantine_isolation_case(8, 5, 3);
}

#[test]
fn quarantined_slot_is_reused_cleanly() {
    let m = model();
    let mut batch = BatchDecodeSession::new(&m);
    let ids: Vec<usize> = (0..3).map(|_| batch.join()).collect();
    // Warm everyone up, then poison the middle sequence.
    for i in 0..3 {
        let toks: Vec<(usize, u32)> = ids
            .iter()
            .enumerate()
            .map(|(s, &id)| (id, stream(s, i)))
            .collect();
        batch.step(&toks).unwrap();
    }
    batch.poison_kv_cache(ids[1]).unwrap();
    let toks: Vec<(usize, u32)> = ids
        .iter()
        .enumerate()
        .map(|(s, &id)| (id, stream(s, 3)))
        .collect();
    batch.step(&toks).unwrap();
    assert_eq!(batch.evicted_last_step(), &[ids[1]]);

    // The freed slot is handed to the next join and decodes from a
    // clean cache: bit-identical to a fresh solo session.
    let fresh = batch.join();
    assert_eq!(fresh, ids[1], "lowest retired slot is reused");
    let mut solo = DecodeSession::new(&m);
    for i in 0..6 {
        let toks: Vec<(usize, u32)> = vec![(ids[0], stream(0, 4 + i)), (fresh, stream(9, i))];
        let logits = batch.step(&toks).unwrap();
        assert!(batch.evicted_last_step().is_empty());
        let alone = solo.feed(stream(9, i)).unwrap();
        assert_eq!(
            logits.row(1),
            &alone[..],
            "step {i}: reused slot must behave like a fresh session"
        );
    }
    assert_eq!(batch.metrics().get("decode/quarantine/evictions"), 1);
}

#[test]
fn solo_session_quarantines_and_stays_quarantined() {
    let m = model();
    let mut s = DecodeSession::new(&m);
    for i in 0..4 {
        s.feed(stream(0, i)).unwrap();
    }
    assert_eq!(s.quarantined(), None);
    s.poison_kv_cache();
    let err = s.feed(stream(0, 4)).unwrap_err();
    let LmError::NonFiniteLogits { pos } = err else {
        panic!("wrong error: {err}");
    };
    assert_eq!(pos, 4);
    assert_eq!(s.quarantined(), Some(4));
    // Sticky: every later feed refuses with the same position.
    assert!(matches!(
        s.feed(0),
        Err(LmError::NonFiniteLogits { pos: 4 })
    ));
    assert_eq!(s.metrics().get("decode/quarantine/sessions"), 1);
}
