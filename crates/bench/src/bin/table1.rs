//! Regenerates **Table 1**: perplexity of the quantized LLaMA-7B
//! stand-in on the C4 and WikiText-2 stand-ins, across FP16, GPTQ, OWQ,
//! LLM-QAT, PB-LLM-20%, APTQ(4.0), APTQ-75% and APTQ-50%.

use aptq_bench::{emit, Experiment, ExperimentScale};
use aptq_eval::pipeline::Method;
use aptq_eval::tables::render_markdown;
use aptq_eval::zoo::ModelSize;

fn main() {
    let scale = if std::env::args().any(|a| a == "--smoke") {
        ExperimentScale::smoke()
    } else {
        ExperimentScale::full()
    };
    eprintln!("[table1] preparing experiment (pretraining TinyLlama-S if not cached)…");
    let mut exp = Experiment::prepare(ModelSize::Small, scale, true).expect("experiment setup");

    let rows = [
        Method::Fp16,
        Method::Gptq { bits: 4 },
        Method::Owq {
            bits: 4,
            outlier_dims: 1,
        },
        Method::LlmQat { bits: 4 },
        Method::PbLlm { salient_ratio: 0.2 },
        Method::AptqUniform { bits: 4 },
        Method::AptqMixed { ratio: 0.75 },
        Method::AptqMixed { ratio: 0.5 },
    ];

    let mut outcomes = Vec::new();
    for m in rows {
        eprintln!("[table1] running {m}…");
        match exp.perplexity_row(m) {
            Ok(row) => outcomes.push(row),
            Err(e) => eprintln!("[table1] {m} failed: {e}"),
        }
    }

    // The session must have captured activations exactly once per
    // Hessian mode (LayerInput for GPTQ/OWQ/PB-LLM, AttentionAware for
    // the APTQ rows) — the whole point of sharing it across rows.
    assert_eq!(
        exp.session.capture_passes(),
        2,
        "expected one capture pass per Hessian mode"
    );
    eprintln!(
        "[table1] session reuse: {} capture passes, {} sensitivity probes across {} rows",
        exp.session.capture_passes(),
        exp.session.sensitivity_passes(),
        rows.len()
    );

    let md = render_markdown(
        "Table 1: Perplexity of quantized LLaMa models on C4 and WikiText-2 (synthetic stand-ins)",
        &outcomes,
    );
    emit("table1.md", &md).expect("write results");
}
