//! Small instrumented end-to-end run emitting `results/telemetry.json`.
//!
//! Exercises every instrumented layer with deterministic work units —
//! quantization scheduler + session caches (`quant/…`), perplexity
//! (`eval/ppl/…`), packed-weight forward (`qmodel/qlinear/…`) and
//! KV-cache decoding (`decode/…`) — merges the recorders into one
//! snapshot, and asserts the structural invariants the counters exist
//! to protect:
//!
//! - the packed forward never takes a re-unpack fallback and touches
//!   each code exactly once, even for byte-misaligned shapes;
//! - a 256-token decode moves O(T) KV bytes (no O(T²) cache regrowth);
//! - repeated method rows hit the session's Hessian cache instead of
//!   re-running activation capture.
//!
//! Run via `cargo run -p aptq-bench --bin telemetry --release`; CI
//! archives the snapshot (see `ci/check.sh`).

use aptq_core::engine::quantize_layer_rtn;
use aptq_core::grid::{GridConfig, QuantGrid};
use aptq_core::QuantSession;
use aptq_eval::perplexity_recorded;
use aptq_eval::pipeline::{quantize_clone_session, Method};
use aptq_lm::decode::DecodeSession;
use aptq_lm::{Model, ModelConfig};
use aptq_obs::Recorder;
use aptq_qmodel::QuantizedLinear;
use aptq_tensor::init;

fn main() {
    let mut rec = Recorder::new();

    // --- Quantization: two Hessian modes, one repeat row per mode so
    // the session cache must serve hits.
    let cfg = ModelConfig {
        max_seq_len: 256,
        ..ModelConfig::test_tiny(16)
    };
    let model = Model::new(&cfg, 7);
    let calib: Vec<Vec<u32>> = (0..6)
        .map(|k| (0..24).map(|i| ((i * 5 + k) % 16) as u32).collect())
        .collect();
    let grid = GridConfig::default();
    let mut session = QuantSession::new(calib);
    let rows = [
        Method::Gptq { bits: 4 },
        Method::Gptq { bits: 2 },
        Method::AptqUniform { bits: 4 },
        Method::AptqMixed { ratio: 0.75 },
    ];
    let mut quantized = None;
    for method in rows {
        let (m, _) = quantize_clone_session(&model, method, &mut session, &grid)
            .expect("method row must quantize");
        quantized = Some(m);
    }
    rec.merge(&session.take_metrics());
    assert!(
        rec.get("quant/session/capture_passes") >= 1,
        "at least one Hessian capture pass must be recorded"
    );
    assert!(
        rec.get("quant/session/hessian_hits") >= 1,
        "repeated rows must hit the session Hessian cache"
    );
    assert!(rec.get("quant/obq/layers_solved") >= 1);

    // --- Perplexity over the last quantized clone.
    let eval_segs: Vec<Vec<u32>> = (0..4)
        .map(|k| (0..32).map(|i| ((i * 7 + k) % 16) as u32).collect())
        .collect();
    let ppl = perplexity_recorded(&quantized.expect("rows ran"), &eval_segs, &mut rec)
        .expect("perplexity must evaluate");
    assert!(ppl.is_finite() && ppl > 1.0, "PPL {ppl} out of range");
    assert!(rec.get("eval/ppl/tokens_predicted") >= 1);

    // --- Packed-weight forward at a byte-misaligned shape: 3-bit codes
    // with d_out = 5 put most group rows off byte boundaries.
    let (d_in, d_out) = (24, 5);
    let mut rng = init::rng(13);
    let w = init::normal(d_in, d_out, 0.5, &mut rng);
    let qcfg = GridConfig {
        group_size: 8,
        ..GridConfig::default()
    };
    let res = quantize_layer_rtn(&w, QuantGrid::int(3, true), &qcfg);
    let qlin = QuantizedLinear::new(res.packed);
    let x = init::normal(4, d_in, 1.0, &mut rng);
    let y = qlin.forward_recorded(&x, &mut rec);
    let want = x.matmul(&res.dequantized);
    for (a, b) in y.as_slice().iter().zip(want.as_slice()) {
        assert!((a - b).abs() < 1e-4, "packed forward diverged: {a} vs {b}");
    }
    assert_eq!(
        rec.get("qmodel/qlinear/fallback_entries"),
        0,
        "the bit-offset unpacker must never fall back"
    );
    assert_eq!(
        rec.get("qmodel/qlinear/codes_unpacked"),
        (d_in * d_out) as u64,
        "3-bit forward must unpack each code exactly once"
    );

    // --- 256-token decode through the preallocated KV cache.
    let mut decode = DecodeSession::new(&model);
    for i in 0..256u32 {
        decode
            .feed(i % 16)
            .expect("decode must not exhaust context");
    }
    let used = decode.cache_bytes() as u64;
    let metrics = decode.take_metrics();
    assert_eq!(metrics.get("decode/tokens"), 256);
    assert_eq!(
        metrics.get("decode/kv_bytes_moved"),
        used,
        "KV write traffic must equal used bytes — O(T), not O(T²)"
    );
    rec.merge(&metrics);

    // --- Quantized 256-token decode over the same model: the packed
    // stack instantiates the same generic DecodeSession, so per-token
    // operator work must be flat in sequence position. The steady-state
    // per-token costs are archived under `decode/q/…` next to the float
    // `decode/…` scope for side-by-side comparison.
    let hs = aptq_core::collect_hessians(&model, &eval_segs, aptq_core::HessianMode::LayerInput)
        .expect("hessians for packed decode");
    let plan = aptq_core::QuantPlan::uniform(&model, 4);
    let qmodel = aptq_qmodel::QuantizedModel::quantize_from(&model, &plan, &hs, &grid)
        .expect("packed model must quantize");
    let mut qdecode = qmodel.decode_session();
    let mut prev = (0u64, 0u64);
    let mut per_token = None;
    for i in 0..256u32 {
        qdecode
            .feed(i % 16)
            .expect("quantized decode must not exhaust context");
        let m = qdecode.metrics();
        let now = (
            m.get("qmodel/qlinear/codes_unpacked"),
            m.get("qmodel/qlinear/macs"),
        );
        let delta = (now.0 - prev.0, now.1 - prev.1);
        prev = now;
        match per_token {
            None => per_token = Some(delta),
            Some(first) => assert_eq!(
                delta, first,
                "step {i}: quantized per-token decode cost must be \
                 independent of sequence position"
            ),
        }
    }
    let per_token = per_token.expect("256 steps ran");
    let qused = qdecode.cache_bytes() as u64;
    let qmetrics = qdecode.take_metrics();
    assert_eq!(qmetrics.get("decode/tokens"), 256);
    assert_eq!(
        qmetrics.get("decode/kv_bytes_moved"),
        qused,
        "quantized KV write traffic must equal used bytes — O(T)"
    );
    assert_eq!(
        qmetrics.get("qmodel/qlinear/fallback_entries"),
        0,
        "packed decode must never take a re-unpack fallback"
    );
    rec.add("decode/q/tokens", qmetrics.get("decode/tokens"));
    rec.add(
        "decode/q/kv_bytes_moved",
        qmetrics.get("decode/kv_bytes_moved"),
    );
    rec.add("decode/q/codes_unpacked_per_token", per_token.0);
    rec.add("decode/q/macs_per_token", per_token.1);
    rec.add(
        "decode/q/forward_calls",
        qmetrics.get("qmodel/qlinear/forward_calls"),
    );

    // --- Batched quantized decode: the serving amortization claim.
    // One step of a B-sequence batch must unpack exactly as many codes
    // as one step of a single sequence — the projections run once per
    // layer per step over the stacked rows, so per-step unpacking work
    // is independent of batch size (only MACs scale with B).
    let mut per_step_codes = Vec::new();
    let mut batch_metrics = None;
    for &bsize in &[1usize, 4] {
        let mut batch = qmodel.batch_decode_session();
        let slots: Vec<usize> = (0..bsize).map(|_| batch.join()).collect();
        let mut prev = 0u64;
        let mut first = None;
        for i in 0..32u32 {
            let tokens: Vec<(usize, u32)> = slots
                .iter()
                .enumerate()
                .map(|(s, &id)| (id, (i + s as u32) % 16))
                .collect();
            batch.step(&tokens).expect("batched step must succeed");
            let now = batch.metrics().get("qmodel/qlinear/codes_unpacked");
            let delta = now - prev;
            prev = now;
            match first {
                None => first = Some(delta),
                Some(f) => assert_eq!(
                    delta, f,
                    "batch size {bsize}, step {i}: per-step unpacking must be flat"
                ),
            }
        }
        per_step_codes.push(first.expect("32 steps ran"));
        batch_metrics = Some(batch.take_metrics());
    }
    assert_eq!(
        per_step_codes[0], per_step_codes[1],
        "codes unpacked per batched step must not scale with batch size"
    );
    let bm = batch_metrics.expect("batched runs completed");
    assert_eq!(bm.get("decode/batch/steps"), 32);
    assert_eq!(bm.get("decode/batch/tokens"), 4 * 32);
    assert_eq!(bm.get("decode/batch/occupancy"), 4 * 32);
    // Archive the B=4 run's decode/batch/* counters plus the
    // amortization figure proven above.
    rec.add("decode/batch/steps", bm.get("decode/batch/steps"));
    rec.add("decode/batch/tokens", bm.get("decode/batch/tokens"));
    rec.add("decode/batch/occupancy", bm.get("decode/batch/occupancy"));
    rec.add("decode/batch/joins", bm.get("decode/batch/joins"));
    rec.add(
        "decode/batch/kv_bytes_moved",
        bm.get("decode/batch/kv_bytes_moved"),
    );
    rec.add("decode/batch/codes_unpacked_per_step", per_step_codes[1]);

    aptq_bench::emit("telemetry.json", &rec.to_json()).expect("emit telemetry.json");
}
