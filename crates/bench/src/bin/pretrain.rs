//! Pretrains (and caches under `assets/`) both evaluation models at the
//! full experiment budget. Run once before the table binaries; they will
//! also train on demand if the cache is missing.

use aptq_eval::zoo::{default_cache_dir, load_or_train, ModelSize, PretrainBudget};

fn main() {
    let dir = default_cache_dir();
    for size in [ModelSize::Small, ModelSize::Medium] {
        let t = std::time::Instant::now();
        let stack = load_or_train(size, PretrainBudget::full(), Some(&dir))
            .expect("pretraining must succeed");
        eprintln!(
            "[pretrain] {} ready in {:?} (final loss {:.4})",
            size.paper_name(),
            t.elapsed(),
            stack.final_loss
        );
    }
}
