//! Regenerates **Table 3** (ablation): APTQ's Hessian-trace allocation
//! vs manual block-wise allocation at matched average bit-widths,
//! C4-stand-in perplexity.

use aptq_bench::{emit, Experiment, ExperimentScale};
use aptq_eval::pipeline::Method;
use aptq_eval::tables::render_markdown;
use aptq_eval::zoo::ModelSize;

fn main() {
    let scale = if std::env::args().any(|a| a == "--smoke") {
        ExperimentScale::smoke()
    } else {
        ExperimentScale::full()
    };
    eprintln!("[table3] preparing experiment…");
    let mut exp = Experiment::prepare(ModelSize::Small, scale, true).expect("experiment setup");

    let rows = [
        Method::ManualBlockwise { ratio: 0.75 },
        Method::AptqMixed { ratio: 0.75 },
        Method::ManualBlockwise { ratio: 0.5 },
        Method::AptqMixed { ratio: 0.5 },
    ];

    let mut outcomes = Vec::new();
    for m in rows {
        eprintln!("[table3] running {m}…");
        match exp.perplexity_row(m) {
            Ok(row) => outcomes.push(row),
            Err(e) => eprintln!("[table3] {m} failed: {e}"),
        }
    }

    let md = render_markdown(
        "Table 3 (ablation): APTQ vs manual block-wise 2/4-bit allocation, C4 perplexity",
        &outcomes,
    );
    emit("table3.md", &md).expect("write results");
}
