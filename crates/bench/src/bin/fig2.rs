//! Regenerates **Figure 2**: C4-stand-in perplexity of APTQ across the
//! 4-bit ratio sweep, against the GPTQ / OWQ / LLM-QAT / PB-LLM
//! reference points.

use aptq_bench::{emit, Experiment, ExperimentScale};
use aptq_eval::pipeline::Method;
use aptq_eval::tables::{render_ascii_chart, render_markdown};
use aptq_eval::zoo::ModelSize;

fn main() {
    let scale = if std::env::args().any(|a| a == "--smoke") {
        ExperimentScale::smoke()
    } else {
        ExperimentScale::full()
    };
    eprintln!("[fig2] preparing experiment…");
    let mut exp = Experiment::prepare(ModelSize::Small, scale, true).expect("experiment setup");

    // The APTQ curve: R ∈ {0.5 … 1.0}.
    let ratios = [0.5f32, 0.6, 0.7, 0.75, 0.8, 0.9, 1.0];
    let mut aptq_curve = Vec::new();
    let mut outcomes = Vec::new();
    for &r in &ratios {
        let method = if r >= 1.0 {
            Method::AptqUniform { bits: 4 }
        } else {
            Method::AptqMixed { ratio: r }
        };
        eprintln!("[fig2] APTQ sweep R={r}…");
        match exp.perplexity_row(method) {
            Ok(row) => {
                aptq_curve.push((row.avg_bits, row.metrics[0].1));
                outcomes.push(row);
            }
            Err(e) => eprintln!("[fig2] R={r} failed: {e}"),
        }
    }

    // Reference points.
    let refs = [
        Method::Fp16,
        Method::Gptq { bits: 4 },
        Method::Owq {
            bits: 4,
            outlier_dims: 1,
        },
        Method::LlmQat { bits: 4 },
        Method::PbLlm { salient_ratio: 0.2 },
    ];
    let mut ref_points = Vec::new();
    for m in refs {
        eprintln!("[fig2] reference {m}…");
        match exp.perplexity_row(m) {
            Ok(row) => {
                if !matches!(m, Method::Fp16) {
                    ref_points.push((row.avg_bits.min(6.0), row.metrics[0].1));
                }
                outcomes.push(row);
            }
            Err(e) => eprintln!("[fig2] {m} failed: {e}"),
        }
    }

    let chart = render_ascii_chart(
        "Figure 2: C4 perplexity vs average bit-width (lower-left is better)",
        &[
            ("APTQ sweep".to_string(), aptq_curve),
            ("baselines (4-bit family)".to_string(), ref_points),
        ],
        64,
        18,
    );
    let table = render_markdown("Figure 2 (underlying data)", &outcomes);
    let content = format!("{chart}\n{table}");
    emit("fig2.md", &content).expect("write results");
}
