//! Ablation studies beyond the paper's Table 3, covering the design
//! choices `DESIGN.md` calls out:
//!
//! A. **Group size** — quantization grid granularity vs perplexity.
//! B. **Hessian damping** — stability/quality trade-off of the
//!    Levenberg–Marquardt regularizer.
//! C. **Calibration size** — how many segments the Hessians need.
//! D. **Attention-aware vs layer-input Hessians** — APTQ's §3.2
//!    contribution isolated at uniform low bit-widths.
//! E. **Sensitivity metric** — mean-trace vs trace×perturbation vs
//!    empirical-loss allocation vs manual block-wise (extends Table 3).
//! F. **Hutchinson estimator** — stochastic vs exact Hessian traces
//!    (the HAWQ-V2 machinery referenced in §2).
//!
//! ```text
//! cargo run -p aptq-bench --bin ablations --release [-- --smoke]
//! ```

use aptq_bench::{emit, Experiment, ExperimentScale};
use aptq_core::grid::GridConfig;
use aptq_core::methods::apply_plan_obq;
use aptq_core::mixed::{AllocationPolicy, MixedPrecisionAllocator};
use aptq_core::trace::{hutchinson_trace, SensitivityMetric, SensitivityReport};
use aptq_core::HessianMode;
use aptq_eval::perplexity;
use aptq_eval::pipeline::{quantize_clone, quantize_clone_session, Method};
use aptq_eval::zoo::ModelSize;
use aptq_lm::Model;

fn main() {
    let scale = if std::env::args().any(|a| a == "--smoke") {
        ExperimentScale::smoke()
    } else {
        ExperimentScale::full()
    };
    eprintln!("[ablations] preparing experiment…");
    let mut exp = Experiment::prepare(ModelSize::Small, scale, true).expect("experiment setup");
    let mut out = String::from("## Ablation studies (TinyLlama-S, SyntheticC4 perplexity)\n\n");

    // One QuantSession spans every study: the Hessians depend only on
    // the calibration set and the capture mode (not on GridConfig), so
    // the grid sweeps below all reuse the two cached capture passes.
    out.push_str(&group_size_ablation(&mut exp));
    out.push_str(&damping_ablation(&mut exp));
    out.push_str(&calibration_size_ablation(&exp));
    out.push_str(&hessian_mode_ablation(&mut exp));
    out.push_str(&sensitivity_metric_ablation(&mut exp));
    out.push_str(&hutchinson_ablation(&mut exp));
    eprintln!(
        "[ablations] session reuse: {} capture passes, {} sensitivity probes",
        exp.session.capture_passes(),
        exp.session.sensitivity_passes()
    );

    emit("ablations.md", &out).expect("write results");
}

fn ppl_with(exp: &mut Experiment, method: Method, cfg: &GridConfig) -> f32 {
    let (model, _) = quantize_clone_session(&exp.stack.model, method, &mut exp.session, cfg)
        .expect("quantization");
    perplexity(&model, &exp.eval_c4).expect("ppl")
}

fn group_size_ablation(exp: &mut Experiment) -> String {
    let mut s = String::from(
        "### A. Group size (GPTQ)\n\n| group | 4-bit PPL | 2-bit PPL |\n|---|---|---|\n",
    );
    for gs in [8usize, 16, 32] {
        let cfg = GridConfig {
            group_size: gs,
            ..exp.grid
        };
        let p4 = ppl_with(exp, Method::Gptq { bits: 4 }, &cfg);
        let p2 = ppl_with(exp, Method::Gptq { bits: 2 }, &cfg);
        s.push_str(&format!("| {gs} | {p4:.3} | {p2:.3} |\n"));
        eprintln!("[ablations] group={gs}: 4b {p4:.3}, 2b {p2:.3}");
    }
    s.push('\n');
    s
}

fn damping_ablation(exp: &mut Experiment) -> String {
    let mut s = String::from("### B. Hessian damping (GPTQ 2-bit)\n\n| damp | PPL |\n|---|---|\n");
    for damp in [0.001f32, 0.01, 0.1, 1.0] {
        let cfg = GridConfig { damp, ..exp.grid };
        let p = ppl_with(exp, Method::Gptq { bits: 2 }, &cfg);
        s.push_str(&format!("| {damp} | {p:.3} |\n"));
        eprintln!("[ablations] damp={damp}: {p:.3}");
    }
    s.push('\n');
    s
}

fn calibration_size_ablation(exp: &Experiment) -> String {
    let mut s = String::from(
        "### C. Calibration size (APTQ 2-bit uniform)\n\n| segments | PPL |\n|---|---|\n",
    );
    // Sub-sampled calibration sets are distinct snapshots, so this study
    // deliberately bypasses the shared session and its caches.
    let full = exp.session.calibration();
    for n in [4usize, 16, full.len()] {
        let calib = &full[..n.min(full.len())];
        let (model, _) = quantize_clone(
            &exp.stack.model,
            Method::AptqUniform { bits: 2 },
            calib,
            &exp.grid,
        )
        .expect("quantization");
        let p = perplexity(&model, &exp.eval_c4).expect("ppl");
        s.push_str(&format!("| {n} | {p:.3} |\n"));
        eprintln!("[ablations] calib={n}: {p:.3}");
    }
    s.push('\n');
    s
}

fn hessian_mode_ablation(exp: &mut Experiment) -> String {
    let mut s = String::from(
        "### D. Layer-input vs attention-aware Hessians (uniform bits)\n\n\
         | bits | GPTQ (layer-input) | APTQ (attention-aware) |\n|---|---|---|\n",
    );
    let grid = exp.grid;
    for bits in [2u8, 3, 4] {
        let g = ppl_with(exp, Method::Gptq { bits }, &grid);
        let a = ppl_with(exp, Method::AptqUniform { bits }, &grid);
        s.push_str(&format!("| {bits} | {g:.3} | {a:.3} |\n"));
        eprintln!("[ablations] bits={bits}: gptq {g:.3}, aptq {a:.3}");
    }
    s.push('\n');
    s
}

fn sensitivity_metric_ablation(exp: &mut Experiment) -> String {
    let mut s = String::from(
        "### E. Allocation signal at R = 50% (avg 3.0 bits)\n\n| signal | PPL |\n|---|---|\n",
    );
    let model: &Model = &exp.stack.model;
    let hessians = exp
        .session
        .hessians(model, HessianMode::AttentionAware)
        .expect("hessians");
    let empirical = exp
        .session
        .sensitivity(model, 2, &exp.grid)
        .expect("sensitivity");
    let allocator = MixedPrecisionAllocator::two_four(0.5).expect("ratio");

    let run = |label: &str, sensitivity: &SensitivityReport, policy: AllocationPolicy| {
        let plan = allocator.allocate(model, sensitivity, policy);
        let mut m = model.clone();
        apply_plan_obq(label, &mut m, &plan, &hessians, &exp.grid).expect("apply plan");
        let p = perplexity(&m, &exp.eval_c4).expect("ppl");
        eprintln!("[ablations] signal={label}: {p:.3}");
        format!("| {label} | {p:.3} |\n")
    };

    let raw = SensitivityReport::with_metric(
        &hessians,
        model,
        SensitivityMetric::MeanTrace,
        2,
        &exp.grid,
    );
    let weighted = SensitivityReport::with_metric(
        &hessians,
        model,
        SensitivityMetric::TraceTimesPerturbation,
        2,
        &exp.grid,
    );

    s.push_str(&run(
        "mean-trace (paper literal)",
        &raw,
        AllocationPolicy::HessianTrace,
    ));
    s.push_str(&run(
        "trace × perturbation (HAWQ-V2)",
        &weighted,
        AllocationPolicy::HessianTrace,
    ));
    s.push_str(&run(
        "empirical loss (default)",
        &empirical,
        AllocationPolicy::HessianTrace,
    ));
    s.push_str(&run(
        "manual block-wise",
        &empirical,
        AllocationPolicy::ManualBlockwise,
    ));
    s.push('\n');
    s
}

fn hutchinson_ablation(exp: &mut Experiment) -> String {
    let mut s = String::from(
        "### F. Hutchinson vs exact Hessian trace\n\n| probes | mean relative error |\n|---|---|\n",
    );
    let hessians = exp
        .session
        .hessians(&exp.stack.model, HessianMode::LayerInput)
        .expect("hessians");
    for probes in [4usize, 16, 64, 256] {
        let mut rel = 0.0f64;
        let mut n = 0usize;
        for (i, lh) in hessians.values().enumerate() {
            let exact = lh.h.trace();
            if exact.abs() < 1e-9 {
                continue;
            }
            let est = hutchinson_trace(&lh.h, probes, 1000 + i as u64);
            rel += ((est - exact).abs() / exact.abs()) as f64;
            n += 1;
        }
        let mean_rel = rel / n.max(1) as f64;
        s.push_str(&format!("| {probes} | {mean_rel:.4} |\n"));
        eprintln!("[ablations] hutchinson probes={probes}: rel err {mean_rel:.4}");
    }
    s.push('\n');
    s
}
