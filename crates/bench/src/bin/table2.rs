//! Regenerates **Table 2**: zero-shot accuracy (PIQA, HellaSwag, ARC-E,
//! ARC-C, WinoGrande + mean) of both model sizes under every method in
//! the paper's comparison.

use aptq_bench::{emit, Experiment, ExperimentScale};
use aptq_eval::pipeline::Method;
use aptq_eval::tables::render_markdown;
use aptq_eval::zoo::ModelSize;

fn main() {
    let scale = if std::env::args().any(|a| a == "--smoke") {
        ExperimentScale::smoke()
    } else {
        ExperimentScale::full()
    };

    let rows = [
        Method::Fp16,
        Method::Rtn { bits: 4 },
        Method::SmoothQuant { bits: 4 },
        Method::Fpq,
        Method::LlmQat { bits: 4 },
        Method::Gptq { bits: 4 },
        Method::PbLlm { salient_ratio: 0.3 },
        Method::PbLlm { salient_ratio: 0.1 },
        Method::AptqUniform { bits: 4 },
        Method::AptqMixed { ratio: 0.9 },
        Method::AptqMixed { ratio: 0.8 },
        Method::AptqMixed { ratio: 0.75 },
        Method::AptqMixed { ratio: 0.7 },
        Method::AptqMixed { ratio: 0.6 },
        Method::AptqMixed { ratio: 0.5 },
    ];

    let mut full = String::new();
    for size in [ModelSize::Small, ModelSize::Medium] {
        eprintln!("[table2] preparing {}…", size.paper_name());
        let mut exp = Experiment::prepare(size, scale, true).expect("experiment setup");
        let mut outcomes = Vec::new();
        for m in rows {
            eprintln!("[table2] {} / {m}…", size.paper_name());
            match exp.zeroshot_row(m) {
                Ok(row) => outcomes.push(row),
                Err(e) => eprintln!("[table2] {m} failed: {e}"),
            }
        }
        full.push_str(&render_markdown(
            &format!(
                "Table 2 ({}): zero-shot accuracy on common-sense suites (synthetic stand-ins, %)",
                size.paper_name()
            ),
            &outcomes,
        ));
        full.push('\n');
    }
    emit("table2.md", &full).expect("write results");
}
