//! # aptq-bench
//!
//! Experiment harness regenerating every table and figure of the APTQ
//! paper, plus Criterion micro-benchmarks of the kernels.
//!
//! Full-scale regeneration binaries (see `DESIGN.md` §4 for the mapping):
//!
//! ```text
//! cargo run -p aptq-bench --bin table1 --release   # Table 1: PPL on C4 + WikiText-2
//! cargo run -p aptq-bench --bin table2 --release   # Table 2: zero-shot accuracy, both models
//! cargo run -p aptq-bench --bin table3 --release   # Table 3: APTQ vs manual block-wise
//! cargo run -p aptq-bench --bin fig2   --release   # Figure 2: PPL vs 4-bit ratio sweep
//! ```
//!
//! Each binary prints a markdown table (and, for fig2, an ASCII chart)
//! and writes the same content under `results/`.

use std::path::PathBuf;

use aptq_core::grid::GridConfig;
use aptq_core::QuantSession;
use aptq_eval::pipeline::{quantize_clone_session, EvalOutcome, Method};
use aptq_eval::zoo::{load_or_train, ModelSize, PretrainBudget, TrainedStack};
use aptq_eval::{evaluate_suites, perplexity, EvalError};
use aptq_textgen::corpus::{CorpusGenerator, CorpusStyle};
use aptq_textgen::{TaskSuite, ZeroShotTask};

/// Scale of an experiment run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExperimentScale {
    /// Pretraining budget.
    pub budget: PretrainBudget,
    /// Calibration segments (paper: 128).
    pub n_calib: usize,
    /// Tokens per calibration segment (paper: 2048).
    pub calib_len: usize,
    /// Held-out evaluation segments per corpus.
    pub n_eval: usize,
    /// Tokens per evaluation segment.
    pub eval_len: usize,
    /// Items per zero-shot suite.
    pub n_task_items: usize,
}

impl ExperimentScale {
    /// The scale used for the reported experiments.
    pub fn full() -> Self {
        ExperimentScale {
            budget: PretrainBudget::full(),
            n_calib: 64,
            calib_len: 64,
            n_eval: 40,
            eval_len: 64,
            n_task_items: 150,
        }
    }

    /// A smoke-test scale for Criterion benches and CI.
    pub fn smoke() -> Self {
        ExperimentScale {
            budget: PretrainBudget::quick(),
            n_calib: 8,
            calib_len: 32,
            n_eval: 6,
            eval_len: 32,
            n_task_items: 20,
        }
    }
}

/// A fully prepared experiment: trained model, calibration set, held-out
/// eval corpora and task suites.
pub struct Experiment {
    /// Trained model + language stack.
    pub stack: TrainedStack,
    /// Shared quantization session: owns the calibration snapshot and
    /// caches Hessians/sensitivities across every method row, so a
    /// multi-method table performs one capture pass per [`aptq_core::HessianMode`].
    pub session: QuantSession,
    /// Held-out SyntheticC4 eval segments.
    pub eval_c4: Vec<Vec<u32>>,
    /// Held-out SyntheticWiki eval segments.
    pub eval_wiki: Vec<Vec<u32>>,
    /// The five zero-shot suites.
    pub suites: Vec<TaskSuite>,
    /// Grid configuration shared by all methods.
    pub grid: GridConfig,
}

impl Experiment {
    /// Prepares an experiment for one model size, caching the pretrained
    /// checkpoint under `assets/` when `cache` is true.
    ///
    /// # Errors
    ///
    /// Propagates training/checkpoint errors.
    ///
    /// # Determinism
    ///
    /// Bit-identical at any `APTQ_THREADS` value: training, capture and
    /// evaluation all run on the deterministic threadpool
    /// ([`aptq_tensor::parallel`]) from fixed seeds.
    pub fn prepare(
        size: ModelSize,
        scale: ExperimentScale,
        cache: bool,
    ) -> Result<Self, EvalError> {
        let cache_dir = cache.then(aptq_eval::zoo::default_cache_dir);
        let stack = load_or_train(size, scale.budget, cache_dir.as_deref())?;

        // Calibration from the training distribution (seed differs from
        // training so segments are fresh), eval from held-out seeds.
        let session = stack.calibration_session(scale.n_calib, scale.calib_len);
        let mut c4_gen =
            CorpusGenerator::new(&stack.grammar, &stack.tokenizer, CorpusStyle::WebC4, 50_002);
        let eval_c4 = c4_gen.segments(scale.n_eval, scale.eval_len);
        let mut wiki_gen =
            CorpusGenerator::new(&stack.grammar, &stack.tokenizer, CorpusStyle::Wiki, 60_003);
        let eval_wiki = wiki_gen.segments(scale.n_eval, scale.eval_len);

        let suites = ZeroShotTask::ALL
            .iter()
            .map(|&t| {
                TaskSuite::generate(
                    t,
                    &stack.grammar,
                    &stack.tokenizer,
                    scale.n_task_items,
                    70_004,
                )
            })
            .collect();

        Ok(Experiment {
            stack,
            session,
            eval_c4,
            eval_wiki,
            suites,
            grid: GridConfig::default(),
        })
    }

    /// Quantizes a clone with `method` and measures perplexity on both
    /// corpora (one Table 1 / Figure 2 row).
    ///
    /// # Errors
    ///
    /// Propagates quantization/evaluation failures.
    ///
    /// # Determinism
    ///
    /// Bit-identical at any `APTQ_THREADS` value: training, capture and
    /// evaluation all run on the deterministic threadpool
    /// ([`aptq_tensor::parallel`]) from fixed seeds.
    pub fn perplexity_row(&mut self, method: Method) -> Result<EvalOutcome, EvalError> {
        let (model, measured) =
            quantize_clone_session(&self.stack.model, method, &mut self.session, &self.grid)?;
        let c4 = perplexity(&model, &self.eval_c4)?;
        let wiki = perplexity(&model, &self.eval_wiki)?;
        Ok(EvalOutcome {
            method: method.label(),
            avg_bits: method.nominal_avg_bits_for(&self.stack.model),
            measured_bits: measured,
            metrics: vec![("C4".to_string(), c4), ("WikiText-2".to_string(), wiki)],
        })
    }

    /// Quantizes a clone with `method` and measures zero-shot accuracy
    /// on all suites plus the mean (one Table 2 row; accuracies in %).
    ///
    /// # Errors
    ///
    /// Propagates quantization/evaluation failures.
    ///
    /// # Determinism
    ///
    /// Bit-identical at any `APTQ_THREADS` value: training, capture and
    /// evaluation all run on the deterministic threadpool
    /// ([`aptq_tensor::parallel`]) from fixed seeds.
    pub fn zeroshot_row(&mut self, method: Method) -> Result<EvalOutcome, EvalError> {
        let (model, measured) =
            quantize_clone_session(&self.stack.model, method, &mut self.session, &self.grid)?;
        let results = evaluate_suites(&model, &self.suites)?;
        Ok(EvalOutcome {
            method: method.label(),
            avg_bits: method.nominal_avg_bits_for(&self.stack.model),
            measured_bits: measured,
            metrics: results
                .into_iter()
                .map(|r| (r.name, r.accuracy * 100.0))
                .collect(),
        })
    }
}

/// Writes experiment output both to stdout and `results/<name>`.
///
/// # Errors
///
/// Propagates filesystem failures.
pub fn emit(name: &str, content: &str) -> Result<(), EvalError> {
    println!("{content}");
    let dir = results_dir();
    std::fs::create_dir_all(&dir)?;
    std::fs::write(dir.join(name), content)?;
    Ok(())
}

/// `results/` under the workspace root.
pub fn results_dir() -> PathBuf {
    // audit:allow(env): CARGO_MANIFEST_DIR is a cargo-injected build constant, not runtime config
    if let Ok(dir) = std::env::var("CARGO_MANIFEST_DIR") {
        let p = PathBuf::from(dir);
        p.ancestors()
            .nth(2)
            .map(|r| r.join("results"))
            .unwrap_or_else(|| p.join("results"))
    } else {
        PathBuf::from("results")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_experiment_prepares_and_runs_one_row() {
        let mut exp =
            Experiment::prepare(ModelSize::Small, ExperimentScale::smoke(), false).unwrap();
        assert_eq!(exp.suites.len(), 5);
        let fp16 = exp.perplexity_row(Method::Fp16).unwrap();
        assert_eq!(fp16.metrics.len(), 2);
        assert!(fp16.metrics[0].1 > 1.0, "PPL must exceed 1");
        let rtn = exp.perplexity_row(Method::Rtn { bits: 4 }).unwrap();
        assert!(
            rtn.metrics[0].1 >= fp16.metrics[0].1 * 0.8,
            "4-bit RTN should not be wildly better than fp16"
        );
    }

    #[test]
    fn zeroshot_row_has_six_columns() {
        let mut exp =
            Experiment::prepare(ModelSize::Small, ExperimentScale::smoke(), false).unwrap();
        let row = exp.zeroshot_row(Method::Fp16).unwrap();
        assert_eq!(row.metrics.len(), 6); // 5 suites + mean
        assert_eq!(row.metrics.last().unwrap().0, "Mean");
    }
}
