//! Criterion benches for the `QuantSession` caches and the parallel
//! OBQ layer scheduler: cold vs warm Hessian capture, and sequential
//! vs multi-threaded `apply_plan_obq_threads` on the same plan.

use aptq_core::grid::GridConfig;
use aptq_core::methods::apply_plan_obq_threads;
use aptq_core::{HessianMode, QuantPlan, QuantSession};
use aptq_lm::{Model, ModelConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

fn calibration() -> Vec<Vec<u32>> {
    (0..16)
        .map(|k| (0..24).map(|i| ((i * 7 + k * 3) % 16) as u32).collect())
        .collect()
}

fn bench_session_cache(c: &mut Criterion) {
    let model = Model::new(&ModelConfig::test_tiny(16), 7);
    let mut group = c.benchmark_group("session_hessian_cache");
    group.sample_size(10);
    group.bench_function("cold_capture", |b| {
        b.iter(|| {
            let mut session = QuantSession::new(calibration());
            black_box(
                session
                    .hessians(&model, HessianMode::AttentionAware)
                    .unwrap(),
            );
        });
    });
    group.bench_function("warm_capture", |b| {
        let mut session = QuantSession::new(calibration());
        session
            .hessians(&model, HessianMode::AttentionAware)
            .unwrap();
        b.iter(|| {
            black_box(
                session
                    .hessians(&model, HessianMode::AttentionAware)
                    .unwrap(),
            )
        });
    });
    group.finish();
}

fn bench_scheduler(c: &mut Criterion) {
    let model = Model::new(&ModelConfig::test_tiny(16), 8);
    let cfg = GridConfig::default();
    let plan = QuantPlan::uniform(&model, 4);
    let mut session = QuantSession::new(calibration());
    let hessians = session
        .hessians(&model, HessianMode::AttentionAware)
        .unwrap();
    let mut group = c.benchmark_group("obq_scheduler");
    group.sample_size(10);
    for threads in [1usize, 4] {
        group.bench_function(format!("threads_{threads}"), |b| {
            b.iter(|| {
                let mut m = model.clone();
                black_box(
                    apply_plan_obq_threads("bench", &mut m, &plan, &hessians, &cfg, threads)
                        .unwrap(),
                );
            });
        });
    }
    group.finish();
}

criterion_group!(
    name = session;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(5));
    targets = bench_session_cache, bench_scheduler
);
criterion_main!(session);
