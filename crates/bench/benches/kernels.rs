//! Criterion micro-benchmarks of the numerical kernels underlying the
//! quantization pipeline: matmul, Cholesky/inverse factorization, the
//! OBQ layer update, attention-aware Hessian construction, and the
//! transformer forward pass.

use aptq_core::engine::{quantize_layer_obq, quantize_layer_rtn};
use aptq_core::grid::{GridConfig, QuantGrid};
use aptq_core::hessian::HessianAccumulator;
use aptq_lm::{Model, ModelConfig};
use aptq_tensor::{init, linalg};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    for &n in &[32usize, 96, 128, 256] {
        let a = init::normal(n, n, 1.0, &mut init::rng(1));
        let b = init::normal(n, n, 1.0, &mut init::rng(2));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| black_box(a.matmul(&b)));
        });
    }
    group.finish();
}

fn bench_cholesky(c: &mut Criterion) {
    let mut group = c.benchmark_group("inverse_cholesky_upper");
    for &n in &[48usize, 96, 128] {
        let g = init::normal(n, n + 4, 1.0, &mut init::rng(3));
        let mut a = g.matmul(&g.transpose());
        linalg::damp_diagonal(&mut a, 0.5);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| black_box(linalg::inverse_cholesky_upper(&a).unwrap()));
        });
    }
    group.finish();
}

fn bench_obq_layer(c: &mut Criterion) {
    let mut group = c.benchmark_group("quantize_layer");
    for &d in &[96usize, 128] {
        let x = init::normal(256, d, 1.0, &mut init::rng(4));
        let w = init::normal(d, d, 0.3, &mut init::rng(5));
        let mut acc = HessianAccumulator::new(d);
        acc.update(&x);
        let h = acc.finish();
        let cfg = GridConfig::default();
        group.bench_with_input(BenchmarkId::new("obq4", d), &d, |bench, _| {
            bench.iter(|| {
                black_box(
                    quantize_layer_obq("bench", &w, &h, QuantGrid::int(4, true), &cfg).unwrap(),
                )
            });
        });
        group.bench_with_input(BenchmarkId::new("rtn4", d), &d, |bench, _| {
            bench.iter(|| black_box(quantize_layer_rtn(&w, QuantGrid::int(4, true), &cfg)));
        });
    }
    group.finish();
}

fn bench_hessian_collection(c: &mut Criterion) {
    let model = Model::new(&ModelConfig::tiny_llama_s(100), 6);
    let segs: Vec<Vec<u32>> = (0..4)
        .map(|k| (0..48).map(|i| ((i * 3 + k) % 100) as u32).collect())
        .collect();
    let mut group = c.benchmark_group("collect_hessians");
    group.sample_size(10);
    group.bench_function("gptq_mode", |b| {
        b.iter(|| {
            black_box(
                aptq_core::collect_hessians(&model, &segs, aptq_core::HessianMode::LayerInput)
                    .unwrap(),
            )
        });
    });
    group.bench_function("aptq_mode", |b| {
        b.iter(|| {
            black_box(
                aptq_core::collect_hessians(&model, &segs, aptq_core::HessianMode::AttentionAware)
                    .unwrap(),
            )
        });
    });
    group.finish();
}

fn bench_forward(c: &mut Criterion) {
    let model = Model::new(&ModelConfig::tiny_llama_s(100), 7);
    let tokens: Vec<u32> = (0..64).map(|i| (i % 100) as u32).collect();
    let mut group = c.benchmark_group("transformer");
    group.bench_function("forward_64tok", |b| {
        b.iter(|| black_box(model.forward(&tokens)));
    });
    group.bench_function("forward_capture_64tok", |b| {
        b.iter(|| black_box(model.forward_capture(&tokens)));
    });
    group.bench_function("sequence_grads_64tok", |b| {
        b.iter(|| black_box(model.sequence_grads(&tokens)));
    });
    // KV-cache decoding: amortized per-token cost after a 32-token prompt.
    group.bench_function("decode_32_plus_8", |b| {
        b.iter(|| {
            black_box(aptq_lm::decode::generate_greedy_cached(&model, &tokens[..32], 8).unwrap())
        });
    });
    group.finish();
}

fn bench_quantized_decode(c: &mut Criterion) {
    // Steady-state decode from packed storage vs the float path above:
    // same generic DecodeSession, projections executed by the
    // group-streaming QuantizedLinear instead of fp32 matmul.
    let model = Model::new(&ModelConfig::tiny_llama_s(100), 7);
    let tokens: Vec<u32> = (0..64).map(|i| (i % 100) as u32).collect();
    let calib: Vec<Vec<u32>> = (0..4)
        .map(|k| (0..48).map(|i| ((i * 3 + k) % 100) as u32).collect())
        .collect();
    let hs = aptq_core::collect_hessians(&model, &calib, aptq_core::HessianMode::AttentionAware)
        .unwrap();
    let plan = aptq_core::QuantPlan::uniform(&model, 4);
    let q = aptq_qmodel::QuantizedModel::quantize_from(&model, &plan, &hs, &GridConfig::default())
        .unwrap();
    let mut group = c.benchmark_group("quantized");
    group.bench_function("forward_64tok", |b| {
        b.iter(|| black_box(q.forward(&tokens).unwrap()));
    });
    group.bench_function("decode_32_plus_8", |b| {
        b.iter(|| black_box(q.generate_greedy(&tokens[..32], 8).unwrap()));
    });
    group.finish();
}

fn bench_packing(c: &mut Criterion) {
    let codes: Vec<u8> = (0..96 * 96).map(|i| (i % 16) as u8).collect();
    let mut group = c.benchmark_group("packing");
    for bits in [2u8, 4] {
        let masked: Vec<u8> = codes.iter().map(|&v| v & ((1 << bits) - 1)).collect();
        group.bench_with_input(BenchmarkId::new("pack", bits), &bits, |b, &bits| {
            b.iter(|| black_box(aptq_core::pack::pack_codes(&masked, bits)));
        });
        let packed = aptq_core::pack::pack_codes(&masked, bits);
        group.bench_with_input(BenchmarkId::new("unpack", bits), &bits, |b, &bits| {
            b.iter(|| black_box(aptq_core::pack::unpack_codes(&packed, bits, masked.len())));
        });
    }
    group.finish();
}

criterion_group!(
    name = kernels;
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));
    targets = bench_matmul, bench_cholesky, bench_obq_layer, bench_hessian_collection,
        bench_forward, bench_quantized_decode, bench_packing
);
criterion_main!(kernels);
