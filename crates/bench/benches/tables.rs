//! Criterion benches exercising each table/figure pipeline end-to-end at
//! smoke scale — one bench per experiment so `cargo bench` demonstrably
//! regenerates every table and figure of the paper (the full-scale
//! numbers come from the `table1`/`table2`/`table3`/`fig2` binaries).

use aptq_bench::{Experiment, ExperimentScale};
use aptq_eval::pipeline::Method;
use aptq_eval::zoo::ModelSize;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

fn smoke_experiment() -> Experiment {
    Experiment::prepare(ModelSize::Small, ExperimentScale::smoke(), false)
        .expect("smoke experiment setup")
}

fn bench_table1(c: &mut Criterion) {
    let mut exp = smoke_experiment();
    let mut group = c.benchmark_group("table1_ppl_rows");
    group.sample_size(10);
    group.bench_function("gptq4", |b| {
        b.iter(|| black_box(exp.perplexity_row(Method::Gptq { bits: 4 }).unwrap()));
    });
    group.bench_function("aptq4", |b| {
        b.iter(|| black_box(exp.perplexity_row(Method::AptqUniform { bits: 4 }).unwrap()));
    });
    group.bench_function("aptq75", |b| {
        b.iter(|| {
            black_box(
                exp.perplexity_row(Method::AptqMixed { ratio: 0.75 })
                    .unwrap(),
            )
        });
    });
    group.finish();
}

fn bench_table2(c: &mut Criterion) {
    let mut exp = smoke_experiment();
    let mut group = c.benchmark_group("table2_zeroshot_rows");
    group.sample_size(10);
    group.bench_function("fp16", |b| {
        b.iter(|| black_box(exp.zeroshot_row(Method::Fp16).unwrap()));
    });
    group.bench_function("aptq90", |b| {
        b.iter(|| black_box(exp.zeroshot_row(Method::AptqMixed { ratio: 0.9 }).unwrap()));
    });
    group.finish();
}

fn bench_table3(c: &mut Criterion) {
    let mut exp = smoke_experiment();
    let mut group = c.benchmark_group("table3_ablation_rows");
    group.sample_size(10);
    group.bench_function("trace50", |b| {
        b.iter(|| {
            black_box(
                exp.perplexity_row(Method::AptqMixed { ratio: 0.5 })
                    .unwrap(),
            )
        });
    });
    group.bench_function("blockwise50", |b| {
        b.iter(|| {
            black_box(
                exp.perplexity_row(Method::ManualBlockwise { ratio: 0.5 })
                    .unwrap(),
            )
        });
    });
    group.finish();
}

fn bench_fig2(c: &mut Criterion) {
    let mut exp = smoke_experiment();
    let mut group = c.benchmark_group("fig2_ratio_sweep");
    group.sample_size(10);
    group.bench_function("sweep_3pts", |b| {
        b.iter(|| {
            for r in [0.5f32, 0.75, 0.9] {
                black_box(exp.perplexity_row(Method::AptqMixed { ratio: r }).unwrap());
            }
        });
    });
    group.finish();
}

criterion_group!(
    name = tables;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(5));
    targets = bench_table1, bench_table2, bench_table3, bench_fig2
);
criterion_main!(tables);
