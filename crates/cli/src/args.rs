//! Minimal `--flag value` argument parsing (no external dependencies).

use crate::Flags;

/// Parses `--key value` pairs into a flag map. A flag followed by
/// another `--flag` (or by nothing) is boolean and stores `"true"` —
/// e.g. `generate --batch`.
///
/// # Errors
///
/// Returns a message for positional arguments.
pub fn parse_flags(args: &[String]) -> Result<Flags, String> {
    let mut flags = Flags::new();
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        let key = a
            .strip_prefix("--")
            .ok_or_else(|| format!("expected --flag, got `{a}`"))?;
        let value = match it.peek() {
            Some(v) if !v.starts_with("--") => it.next().cloned().unwrap_or_default(),
            _ => "true".to_string(),
        };
        flags.insert(key.to_string(), value);
    }
    Ok(flags)
}

/// Boolean flag: present (with no value or `true`) means on.
pub fn get_bool(flags: &Flags, key: &str) -> bool {
    matches!(flags.get(key).map(String::as_str), Some("true") | Some("1"))
}

/// Required string flag.
pub fn require<'a>(flags: &'a Flags, key: &str) -> Result<&'a str, String> {
    flags
        .get(key)
        .map(String::as_str)
        .ok_or_else(|| format!("missing required flag --{key}"))
}

/// Optional flag with default.
pub fn get_or<'a>(flags: &'a Flags, key: &str, default: &'a str) -> &'a str {
    flags.get(key).map(String::as_str).unwrap_or(default)
}

/// Optional numeric flag.
pub fn get_usize(flags: &Flags, key: &str, default: usize) -> Result<usize, String> {
    match flags.get(key) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("--{key} expects an integer, got `{v}`")),
    }
}

/// Optional float flag.
pub fn get_f32(flags: &Flags, key: &str, default: f32) -> Result<f32, String> {
    match flags.get(key) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("--{key} expects a number, got `{v}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn to_vec(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_pairs() {
        let f = parse_flags(&to_vec(&["--size", "s", "--steps", "100"])).unwrap();
        assert_eq!(require(&f, "size").unwrap(), "s");
        assert_eq!(get_usize(&f, "steps", 0).unwrap(), 100);
        assert_eq!(get_or(&f, "missing", "dflt"), "dflt");
    }

    #[test]
    fn rejects_positional_accepts_boolean() {
        assert!(parse_flags(&to_vec(&["positional"])).is_err());
        // A valueless flag is boolean, standalone or before another flag.
        let f = parse_flags(&to_vec(&["--batch"])).unwrap();
        assert!(get_bool(&f, "batch"));
        assert!(!get_bool(&f, "other"));
        let f = parse_flags(&to_vec(&["--batch", "--tokens", "8"])).unwrap();
        assert!(get_bool(&f, "batch"));
        assert_eq!(get_usize(&f, "tokens", 0).unwrap(), 8);
    }

    #[test]
    fn numeric_validation() {
        let f = parse_flags(&to_vec(&["--ratio", "abc"])).unwrap();
        assert!(get_f32(&f, "ratio", 0.5).is_err());
        let f = parse_flags(&to_vec(&["--ratio", "0.75"])).unwrap();
        assert_eq!(get_f32(&f, "ratio", 0.5).unwrap(), 0.75);
    }

    #[test]
    fn require_reports_missing() {
        let f = Flags::new();
        assert!(require(&f, "model").unwrap_err().contains("--model"));
    }
}
