//! Minimal `--flag value` argument parsing (no external dependencies).

use crate::Flags;

/// Parses `--key value` pairs into a flag map.
///
/// # Errors
///
/// Returns a message for positional arguments or a trailing flag with no
/// value.
pub fn parse_flags(args: &[String]) -> Result<Flags, String> {
    let mut flags = Flags::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let key = a
            .strip_prefix("--")
            .ok_or_else(|| format!("expected --flag, got `{a}`"))?;
        let value = it
            .next()
            .ok_or_else(|| format!("flag --{key} needs a value"))?;
        flags.insert(key.to_string(), value.clone());
    }
    Ok(flags)
}

/// Required string flag.
pub fn require<'a>(flags: &'a Flags, key: &str) -> Result<&'a str, String> {
    flags
        .get(key)
        .map(String::as_str)
        .ok_or_else(|| format!("missing required flag --{key}"))
}

/// Optional flag with default.
pub fn get_or<'a>(flags: &'a Flags, key: &str, default: &'a str) -> &'a str {
    flags.get(key).map(String::as_str).unwrap_or(default)
}

/// Optional numeric flag.
pub fn get_usize(flags: &Flags, key: &str, default: usize) -> Result<usize, String> {
    match flags.get(key) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("--{key} expects an integer, got `{v}`")),
    }
}

/// Optional float flag.
pub fn get_f32(flags: &Flags, key: &str, default: f32) -> Result<f32, String> {
    match flags.get(key) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("--{key} expects a number, got `{v}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn to_vec(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_pairs() {
        let f = parse_flags(&to_vec(&["--size", "s", "--steps", "100"])).unwrap();
        assert_eq!(require(&f, "size").unwrap(), "s");
        assert_eq!(get_usize(&f, "steps", 0).unwrap(), 100);
        assert_eq!(get_or(&f, "missing", "dflt"), "dflt");
    }

    #[test]
    fn rejects_positional_and_dangling() {
        assert!(parse_flags(&to_vec(&["positional"])).is_err());
        assert!(parse_flags(&to_vec(&["--key"])).is_err());
    }

    #[test]
    fn numeric_validation() {
        let f = parse_flags(&to_vec(&["--ratio", "abc"])).unwrap();
        assert!(get_f32(&f, "ratio", 0.5).is_err());
        let f = parse_flags(&to_vec(&["--ratio", "0.75"])).unwrap();
        assert_eq!(get_f32(&f, "ratio", 0.5).unwrap(), 0.75);
    }

    #[test]
    fn require_reports_missing() {
        let f = Flags::new();
        assert!(require(&f, "model").unwrap_err().contains("--model"));
    }
}
