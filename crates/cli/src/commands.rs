//! The CLI subcommand implementations.

use aptq_core::grid::GridConfig;
use aptq_core::mixed::{AllocationPolicy, MixedPrecisionAllocator};
use aptq_core::trace::{SensitivityMetric, SensitivityReport};
use aptq_core::{HessianMode, QuantSession};
use aptq_eval::pipeline::Method;
use aptq_eval::zoo::{load_or_train, ModelSize, PretrainBudget};
use aptq_eval::{evaluate_suites, perplexity};
use aptq_lm::Model;
use aptq_qmodel::QuantizedModel;
use aptq_textgen::corpus::{CorpusGenerator, CorpusStyle};
use aptq_textgen::{Grammar, TaskSuite, Tokenizer, ZeroShotTask};

use aptq_lm::LmError;
use aptq_qmodel::QModelError;

use crate::args::{get_bool, get_f32, get_or, get_usize, require};
use crate::error::CliError;
use crate::Flags;

/// Standard calibration set used by all quantizing subcommands; segment
/// length is clamped to the model's maximum context.
fn calibration(grammar: &Grammar, tok: &Tokenizer, n: usize, max_seq: usize) -> Vec<Vec<u32>> {
    CorpusGenerator::new(grammar, tok, CorpusStyle::WebC4, 40_001).segments(n, max_seq.min(64))
}

/// Maps LM-stack errors onto exit-code classes: checkpoint/envelope
/// failures are integrity errors, everything else is runtime.
fn lm_err(e: LmError) -> CliError {
    match e {
        LmError::Checkpoint(a) => CliError::Integrity(a),
        other => CliError::Runtime(other.to_string()),
    }
}

/// Same partition for the packed-model stack.
fn qm_err(e: QModelError) -> CliError {
    match e {
        QModelError::Integrity(a) => CliError::Integrity(a),
        other => CliError::Runtime(other.to_string()),
    }
}

/// Loads a model from either a checksummed artifact envelope (the
/// format every `aptq` save now emits) or a bare `Model::to_json`
/// checkpoint (accepted for older files).
fn load_model(path: &str) -> Result<Model, CliError> {
    let text =
        std::fs::read_to_string(path).map_err(|e| CliError::io(format!("reading {path}"), e))?;
    if aptq_artifact::is_envelope(&text) {
        Model::from_envelope_json(&text).map_err(lm_err)
    } else {
        Model::from_json(&text).map_err(lm_err)
    }
}

fn save(path: &str, content: &str) -> Result<(), CliError> {
    std::fs::write(path, content).map_err(|e| CliError::io(format!("writing {path}"), e))
}

/// `aptq pretrain --size s|m [--steps N] [--out FILE]`
///
/// # Determinism
///
/// Bit-identical output at any `APTQ_THREADS` value: all heavy math
/// runs on the deterministic threadpool ([`aptq_tensor::parallel`]).
pub fn pretrain(flags: &Flags) -> Result<(), CliError> {
    let size = match get_or(flags, "size", "s") {
        "s" => ModelSize::Small,
        "m" => ModelSize::Medium,
        other => {
            return Err(CliError::Usage(format!(
                "--size must be s or m, got `{other}`"
            )))
        }
    };
    let mut budget = PretrainBudget::full();
    budget.steps = get_usize(flags, "steps", budget.steps).map_err(CliError::Usage)?;
    let out = get_or(flags, "out", "model.json");
    eprintln!(
        "pretraining {} for {} steps…",
        size.paper_name(),
        budget.steps
    );
    let stack = load_or_train(size, budget, None).map_err(|e| CliError::Runtime(e.to_string()))?;
    save(out, &stack.model.to_envelope_json().map_err(lm_err)?)?;
    eprintln!("saved {out} (final loss {:.4})", stack.final_loss);
    Ok(())
}

/// Parses a method name like `aptq-75` or `gptq4`.
pub fn parse_method(name: &str) -> Result<Method, String> {
    let m = match name {
        "fp16" => Method::Fp16,
        "rtn2" => Method::Rtn { bits: 2 },
        "rtn3" => Method::Rtn { bits: 3 },
        "rtn4" => Method::Rtn { bits: 4 },
        "gptq2" => Method::Gptq { bits: 2 },
        "gptq3" => Method::Gptq { bits: 3 },
        "gptq4" => Method::Gptq { bits: 4 },
        "owq" => Method::Owq {
            bits: 4,
            outlier_dims: 1,
        },
        "smoothquant" => Method::SmoothQuant { bits: 4 },
        "fpq" => Method::Fpq,
        "qat" => Method::LlmQat { bits: 4 },
        "aptq4" => Method::AptqUniform { bits: 4 },
        other => {
            let parse_pct = |prefix: &str| -> Option<Result<f32, String>> {
                other.strip_prefix(prefix).map(|pct| {
                    pct.parse::<f32>()
                        .map(|p| p / 100.0)
                        .map_err(|_| format!("bad percentage in `{other}`"))
                })
            };
            if let Some(p) = parse_pct("aptq-") {
                Method::AptqMixed { ratio: p? }
            } else if let Some(p) = parse_pct("blockwise-") {
                Method::ManualBlockwise { ratio: p? }
            } else if let Some(p) = parse_pct("pbllm-") {
                Method::PbLlm { salient_ratio: p? }
            } else {
                return Err(format!("unknown method `{other}`"));
            }
        }
    };
    Ok(m)
}

/// `aptq quantize --model FILE --method METHOD [--out FILE]`
///
/// # Determinism
///
/// Bit-identical output at any `APTQ_THREADS` value: all heavy math
/// runs on the deterministic threadpool ([`aptq_tensor::parallel`]).
pub fn quantize(flags: &Flags) -> Result<(), CliError> {
    let mut model = load_model(require(flags, "model").map_err(CliError::Usage)?)?;
    let method = parse_method(require(flags, "method").map_err(CliError::Usage)?)
        .map_err(CliError::Usage)?;
    let out = get_or(flags, "out", "quantized.json");
    let grammar = Grammar::standard();
    let tok = Tokenizer::from_grammar(&grammar);
    let mut session = QuantSession::new(calibration(
        &grammar,
        &tok,
        get_usize(flags, "segments", 64).map_err(CliError::Usage)?,
        model.config().max_seq_len,
    ));
    let report = method
        .apply(&mut model, &mut session, &GridConfig::default())
        .map_err(|e| CliError::Runtime(e.to_string()))?;
    if let Some(r) = &report {
        eprintln!("{}", r.summary());
    }
    save(out, &model.to_envelope_json().map_err(lm_err)?)?;
    eprintln!("saved {out}");
    Ok(())
}

/// `aptq pack --model FILE [--ratio R] [--out FILE]` — build a deployable
/// packed artifact (APTQ mixed 2/4 at the given 4-bit ratio).
///
/// # Determinism
///
/// Bit-identical output at any `APTQ_THREADS` value: all heavy math
/// runs on the deterministic threadpool ([`aptq_tensor::parallel`]).
pub fn pack(flags: &Flags) -> Result<(), CliError> {
    let model = load_model(require(flags, "model").map_err(CliError::Usage)?)?;
    let ratio = get_f32(flags, "ratio", 0.75).map_err(CliError::Usage)?;
    let out = get_or(flags, "out", "packed.json");
    let grammar = Grammar::standard();
    let tok = Tokenizer::from_grammar(&grammar);
    let mut session = QuantSession::new(calibration(
        &grammar,
        &tok,
        get_usize(flags, "segments", 64).map_err(CliError::Usage)?,
        model.config().max_seq_len,
    ));
    let cfg = GridConfig::default();

    let hessians = session
        .hessians(&model, HessianMode::AttentionAware)
        .map_err(|e| CliError::Runtime(e.to_string()))?;
    let sensitivity = session
        .sensitivity(&model, 2, &cfg)
        .map_err(|e| CliError::Runtime(e.to_string()))?;
    let allocator =
        MixedPrecisionAllocator::two_four(ratio).map_err(|e| CliError::Usage(e.to_string()))?;
    let plan = allocator.allocate(&model, &sensitivity, AllocationPolicy::HessianTrace);
    let qmodel = QuantizedModel::quantize_from(&model, &plan, &hessians, &cfg).map_err(qm_err)?;
    eprintln!("{}", qmodel.memory());
    save(out, &qmodel.to_envelope_json().map_err(qm_err)?)?;
    eprintln!("saved {out}");
    Ok(())
}

/// `aptq eval-ppl --model FILE [--corpus c4|wiki] [--segments N]`
///
/// # Determinism
///
/// Bit-identical output at any `APTQ_THREADS` value: all heavy math
/// runs on the deterministic threadpool ([`aptq_tensor::parallel`]).
pub fn eval_ppl(flags: &Flags) -> Result<(), CliError> {
    let model = load_model(require(flags, "model").map_err(CliError::Usage)?)?;
    let style = match get_or(flags, "corpus", "c4") {
        "c4" => CorpusStyle::WebC4,
        "wiki" => CorpusStyle::Wiki,
        other => {
            return Err(CliError::Usage(format!(
                "--corpus must be c4 or wiki, got `{other}`"
            )))
        }
    };
    let n = get_usize(flags, "segments", 40).map_err(CliError::Usage)?;
    let grammar = Grammar::standard();
    let tok = Tokenizer::from_grammar(&grammar);
    let segs = CorpusGenerator::new(&grammar, &tok, style, 50_002)
        .segments(n, model.config().max_seq_len.min(64));
    let ppl = perplexity(&model, &segs).map_err(|e| CliError::Runtime(e.to_string()))?;
    println!("perplexity: {ppl:.4}");
    Ok(())
}

/// `aptq eval-zs --model FILE [--items N]`
///
/// # Determinism
///
/// Bit-identical output at any `APTQ_THREADS` value: all heavy math
/// runs on the deterministic threadpool ([`aptq_tensor::parallel`]).
pub fn eval_zs(flags: &Flags) -> Result<(), CliError> {
    let model = load_model(require(flags, "model").map_err(CliError::Usage)?)?;
    let n = get_usize(flags, "items", 150).map_err(CliError::Usage)?;
    let grammar = Grammar::standard();
    let tok = Tokenizer::from_grammar(&grammar);
    let suites: Vec<TaskSuite> = ZeroShotTask::ALL
        .iter()
        .map(|&t| TaskSuite::generate(t, &grammar, &tok, n, 70_004))
        .collect();
    let results = evaluate_suites(&model, &suites).map_err(|e| CliError::Runtime(e.to_string()))?;
    for r in results {
        println!("{:<12} {:.1}%", r.name, r.accuracy * 100.0);
    }
    Ok(())
}

/// `aptq sensitivity --model FILE [--metric trace|weighted|empirical]`
///
/// # Determinism
///
/// Bit-identical output at any `APTQ_THREADS` value: all heavy math
/// runs on the deterministic threadpool ([`aptq_tensor::parallel`]).
pub fn sensitivity(flags: &Flags) -> Result<(), CliError> {
    let model = load_model(require(flags, "model").map_err(CliError::Usage)?)?;
    let grammar = Grammar::standard();
    let tok = Tokenizer::from_grammar(&grammar);
    let mut session = QuantSession::new(calibration(
        &grammar,
        &tok,
        get_usize(flags, "segments", 32).map_err(CliError::Usage)?,
        model.config().max_seq_len,
    ));
    let cfg = GridConfig::default();
    let report = match get_or(flags, "metric", "empirical") {
        "empirical" => (*session
            .sensitivity(&model, 2, &cfg)
            .map_err(|e| CliError::Runtime(e.to_string()))?)
        .clone(),
        metric @ ("trace" | "weighted") => {
            let hessians = session
                .hessians(&model, HessianMode::AttentionAware)
                .map_err(|e| CliError::Runtime(e.to_string()))?;
            let m = if metric == "trace" {
                SensitivityMetric::MeanTrace
            } else {
                SensitivityMetric::TraceTimesPerturbation
            };
            SensitivityReport::with_metric(&hessians, &model, m, 2, &cfg)
        }
        other => {
            return Err(CliError::Usage(format!(
                "--metric must be trace|weighted|empirical, got `{other}`"
            )))
        }
    };
    println!("{}", report.to_markdown());
    Ok(())
}

/// `aptq generate --model FILE --prompt TEXT [--tokens N] [--batch]`
///
/// With `--batch`, `--prompt` is split on `|` into one prompt per
/// sequence and all sequences decode together through a
/// [`aptq_lm::decode::BatchDecodeSession`] (one projection call per
/// layer per step for the whole batch); each completion prints on its
/// own line, identical to running the prompts one at a time.
///
/// # Determinism
///
/// Bit-identical output at any `APTQ_THREADS` value: all heavy math
/// runs on the deterministic threadpool ([`aptq_tensor::parallel`]).
pub fn generate(flags: &Flags) -> Result<(), CliError> {
    let model = load_model(require(flags, "model").map_err(CliError::Usage)?)?;
    let prompt_text = require(flags, "prompt").map_err(CliError::Usage)?;
    let n = get_usize(flags, "tokens", 16).map_err(CliError::Usage)?;
    let grammar = Grammar::standard();
    let tok = Tokenizer::from_grammar(&grammar);
    let encode = |text: &str| {
        let mut prompt = vec![aptq_textgen::tokenizer::BOS];
        prompt.extend(tok.encode(text));
        prompt
    };
    if get_bool(flags, "batch") {
        let prompts: Vec<Vec<u32>> = prompt_text.split('|').map(encode).collect();
        let outs = aptq_lm::decode::generate_greedy_batched(&model, &prompts, n).map_err(lm_err)?;
        for out in &outs {
            println!("{}", tok.decode(out));
        }
    } else {
        let out = aptq_lm::decode::generate_greedy_cached(&model, &encode(prompt_text), n)
            .map_err(lm_err)?;
        println!("{}", tok.decode(&out));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn method_parser_covers_table_rows() {
        assert_eq!(parse_method("fp16").unwrap(), Method::Fp16);
        assert_eq!(parse_method("gptq4").unwrap(), Method::Gptq { bits: 4 });
        assert_eq!(
            parse_method("aptq4").unwrap(),
            Method::AptqUniform { bits: 4 }
        );
        assert_eq!(
            parse_method("aptq-75").unwrap(),
            Method::AptqMixed { ratio: 0.75 }
        );
        assert_eq!(
            parse_method("blockwise-50").unwrap(),
            Method::ManualBlockwise { ratio: 0.5 }
        );
        assert_eq!(
            parse_method("pbllm-20").unwrap(),
            Method::PbLlm { salient_ratio: 0.2 }
        );
        assert!(parse_method("nope").is_err());
        assert!(parse_method("aptq-xx").is_err());
    }

    #[test]
    fn end_to_end_quantize_roundtrip_via_files() {
        let dir = std::env::temp_dir().join(format!("aptq-cli-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let model_path = dir.join("model.json");
        let out_path = dir.join("q.json");

        // Tiny model written directly (pretrain would be slow here).
        let grammar = Grammar::standard();
        let tok = Tokenizer::from_grammar(&grammar);
        let model = Model::new(&aptq_lm::ModelConfig::test_tiny(tok.vocab_size()), 1);
        std::fs::write(&model_path, model.to_json().unwrap()).unwrap();

        let mut flags = Flags::new();
        flags.insert("model".into(), model_path.to_string_lossy().into_owned());
        flags.insert("method".into(), "rtn4".into());
        flags.insert("out".into(), out_path.to_string_lossy().into_owned());
        flags.insert("segments".into(), "4".into());
        quantize(&flags).unwrap();
        // Saves now emit checksummed artifact envelopes…
        let saved = std::fs::read_to_string(&out_path).unwrap();
        assert!(aptq_artifact::is_envelope(&saved));
        let loaded = load_model(out_path.to_str().unwrap()).unwrap();
        assert!(loaded.forward(&[1, 2, 3]).all_finite());
        // …while bare `Model::to_json` checkpoints still load.
        let bare = load_model(model_path.to_str().unwrap()).unwrap();
        assert!(bare.forward(&[1, 2, 3]).all_finite());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn eval_and_generate_run_on_files() {
        let dir = std::env::temp_dir().join(format!("aptq-cli-test2-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let model_path = dir.join("model.json");
        let grammar = Grammar::standard();
        let tok = Tokenizer::from_grammar(&grammar);
        let model = Model::new(&aptq_lm::ModelConfig::test_tiny(tok.vocab_size()), 2);
        std::fs::write(&model_path, model.to_json().unwrap()).unwrap();

        let mut flags = Flags::new();
        flags.insert("model".into(), model_path.to_string_lossy().into_owned());
        flags.insert("segments".into(), "4".into());
        eval_ppl(&flags).unwrap();

        flags.insert("items".into(), "5".into());
        eval_zs(&flags).unwrap();

        flags.insert("prompt".into(), "the crow".into());
        flags.insert("tokens".into(), "4".into());
        generate(&flags).unwrap();

        // Batched path: several prompts, '|'-separated.
        flags.insert("prompt".into(), "the crow|a fox runs".into());
        flags.insert("batch".into(), "true".into());
        generate(&flags).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bad_inputs_are_reported() {
        let flags = Flags::new();
        assert!(quantize(&flags).is_err());
        assert!(eval_ppl(&flags).is_err());
        let mut flags = Flags::new();
        flags.insert("model".into(), "/nonexistent/x.json".into());
        let err = eval_ppl(&flags).unwrap_err();
        assert!(err.to_string().contains("reading"));
        assert_eq!(err.exit_code(), 3, "missing file is an I/O error");
    }

    #[test]
    fn error_classes_map_to_distinct_exit_codes() {
        // Usage: missing required flag.
        assert_eq!(eval_ppl(&Flags::new()).unwrap_err().exit_code(), 2);

        let dir = std::env::temp_dir().join(format!("aptq-cli-test3-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tampered.json");
        let model = Model::new(&aptq_lm::ModelConfig::test_tiny(16), 3);
        let envelope = model.to_envelope_json().unwrap();
        // Corrupt one payload digit so the checksum fails.
        let body = envelope.find('\n').unwrap() + 1;
        let mid = body + (envelope.len() - body) / 2;
        let bytes: String = envelope
            .char_indices()
            .map(|(i, c)| {
                if i >= mid && i < mid + 60 && c.is_ascii_digit() {
                    if c == '1' {
                        '2'
                    } else {
                        '1'
                    }
                } else {
                    c
                }
            })
            .collect();
        assert_ne!(bytes, envelope);
        std::fs::write(&path, bytes).unwrap();
        let mut flags = Flags::new();
        flags.insert("model".into(), path.to_string_lossy().into_owned());
        let err = eval_ppl(&flags).unwrap_err();
        assert_eq!(err.exit_code(), 4, "tampered artifact: {err}");
        assert!(matches!(err, CliError::Integrity(_)));
        std::fs::remove_dir_all(&dir).ok();
    }
}
