//! `aptq` — command-line driver for the APTQ reproduction.
//!
//! ```text
//! aptq pretrain  --size s|m --steps N --out model.json
//! aptq quantize  --model model.json --method METHOD --out quantized.json
//! aptq pack      --model model.json --ratio R --out packed.json
//! aptq eval-ppl  --model model.json [--corpus c4|wiki]
//! aptq eval-zs   --model model.json [--items N]
//! aptq sensitivity --model model.json [--metric trace|weighted|empirical]
//! aptq generate  --model model.json --prompt "the wild" [--tokens N]
//! aptq generate  --model model.json --prompt "a|b|c" --batch [--tokens N]
//! ```
//!
//! Methods for `quantize`: `fp16`, `rtn2|rtn3|rtn4`, `gptq2|gptq3|gptq4`,
//! `owq`, `smoothquant`, `fpq`, `qat`, `pbllm-<pct>`, `aptq4`,
//! `aptq-<pct>`, `blockwise-<pct>`.

use std::collections::BTreeMap;
use std::process::ExitCode;

mod args;
mod commands;
mod error;

use error::CliError;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() {
        eprintln!("{}", usage());
        return ExitCode::from(CliError::Usage(String::new()).exit_code());
    }
    let (cmd, rest) = argv.split_first().expect("non-empty argv");
    let opts = match args::parse_flags(rest) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", usage());
            return ExitCode::from(CliError::Usage(e).exit_code());
        }
    };
    let result = match cmd.as_str() {
        "pretrain" => commands::pretrain(&opts),
        "quantize" => commands::quantize(&opts),
        "pack" => commands::pack(&opts),
        "eval-ppl" => commands::eval_ppl(&opts),
        "eval-zs" => commands::eval_zs(&opts),
        "sensitivity" => commands::sensitivity(&opts),
        "generate" => commands::generate(&opts),
        "help" | "--help" | "-h" => {
            println!("{}", usage());
            return ExitCode::SUCCESS;
        }
        other => Err(CliError::Usage(format!("unknown command `{other}`"))),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(e.exit_code())
        }
    }
}

/// The full usage text.
fn usage() -> String {
    let mut s =
        String::from("aptq — attention-aware post-training mixed-precision quantization\n\n");
    s.push_str("USAGE:\n");
    s.push_str("  aptq pretrain    --size s|m [--steps N] [--out FILE]\n");
    s.push_str("  aptq quantize    --model FILE --method METHOD [--out FILE]\n");
    s.push_str("  aptq pack        --model FILE [--ratio R] [--out FILE]\n");
    s.push_str("  aptq eval-ppl    --model FILE [--corpus c4|wiki] [--segments N]\n");
    s.push_str("  aptq eval-zs     --model FILE [--items N]\n");
    s.push_str("  aptq sensitivity --model FILE [--metric trace|weighted|empirical]\n");
    s.push_str("  aptq generate    --model FILE --prompt TEXT [--tokens N] [--batch]\n");
    s.push_str("                   (--batch decodes '|'-separated prompts together)\n\n");
    s.push_str("METHODS: fp16 rtn2 rtn3 rtn4 gptq2 gptq3 gptq4 owq smoothquant fpq qat\n");
    s.push_str("         pbllm-<pct> aptq4 aptq-<pct> blockwise-<pct>   (pct = 10..100)\n\n");
    s.push_str("EXIT CODES:\n");
    s.push_str("  0  success\n");
    s.push_str("  1  runtime failure (quantization, evaluation, generation)\n");
    s.push_str("  2  usage error (unknown command, bad flag or value)\n");
    s.push_str("  3  I/O failure (file missing or unwritable)\n");
    s.push_str("  4  artifact integrity failure (malformed, tampered or truncated file)\n");
    s
}

/// Shared flag map type.
pub type Flags = BTreeMap<String, String>;
