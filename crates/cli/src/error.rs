//! Structured CLI errors with documented process exit codes.

use aptq_artifact::ArtifactError;

/// Everything an `aptq` subcommand can fail with, partitioned by exit
/// code so scripts can tell bad invocations from bad files from bad
/// artifacts from runtime failures (see `aptq help`, EXIT CODES).
#[derive(Debug)]
pub enum CliError {
    /// Bad invocation: unknown command/flag/value (exit code 2).
    Usage(String),
    /// Filesystem failure while reading or writing (exit code 3).
    Io {
        /// What the CLI was doing, e.g. `reading model.json`.
        context: String,
        /// The underlying filesystem error.
        source: std::io::Error,
    },
    /// Artifact integrity failure: malformed, tampered or truncated
    /// checkpoint/plan/packed-model (exit code 4).
    Integrity(ArtifactError),
    /// Any other runtime failure (exit code 1).
    Runtime(String),
}

impl CliError {
    /// The process exit code this error class maps to.
    pub fn exit_code(&self) -> u8 {
        match self {
            CliError::Usage(_) => 2,
            CliError::Io { .. } => 3,
            CliError::Integrity(_) => 4,
            CliError::Runtime(_) => 1,
        }
    }

    /// Wraps a filesystem error with its operation context.
    pub fn io(context: impl Into<String>, source: std::io::Error) -> Self {
        CliError::Io {
            context: context.into(),
            source,
        }
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(m) => write!(f, "{m}"),
            CliError::Io { context, source } => write!(f, "{context}: {source}"),
            CliError::Integrity(e) => write!(f, "artifact integrity: {e}"),
            CliError::Runtime(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for CliError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CliError::Io { source, .. } => Some(source),
            CliError::Integrity(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ArtifactError> for CliError {
    fn from(e: ArtifactError) -> Self {
        CliError::Integrity(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_codes_are_distinct_per_class() {
        let usage = CliError::Usage("bad flag".into());
        let io = CliError::io(
            "reading x.json",
            std::io::Error::new(std::io::ErrorKind::NotFound, "gone"),
        );
        let integrity = CliError::Integrity(ArtifactError::Malformed("short".into()));
        let runtime = CliError::Runtime("solver failed".into());
        assert_eq!(usage.exit_code(), 2);
        assert_eq!(io.exit_code(), 3);
        assert_eq!(integrity.exit_code(), 4);
        assert_eq!(runtime.exit_code(), 1);
        assert!(io.to_string().contains("reading"));
        assert!(std::error::Error::source(&io).is_some());
        assert!(std::error::Error::source(&integrity).is_some());
        assert!(std::error::Error::source(&usage).is_none());
    }
}
