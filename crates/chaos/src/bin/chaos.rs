//! Chaos-suite driver: runs the seeded fault-injection suite and
//! archives the deterministic report (`results/chaos.json` by default).
//!
//! Usage: `cargo run -p aptq-chaos --bin chaos -- [--seed N] [--rounds N] [--out PATH]`
//!
//! Exit code 0 iff every injected fault was detected (or provably
//! harmless); 1 otherwise; 2 on bad usage or I/O failure.

use std::process::ExitCode;

use aptq_chaos::run_suite;

fn parse_args() -> Result<(u64, usize, String), String> {
    let mut seed = 7u64;
    let mut rounds = 5usize;
    let mut out = "results/chaos.json".to_string();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let need = |i: usize| -> Result<&String, String> {
            args.get(i + 1)
                .ok_or_else(|| format!("{} needs a value", args[i]))
        };
        match args[i].as_str() {
            "--seed" => {
                seed = need(i)?.parse().map_err(|e| format!("--seed: {e}"))?;
                i += 2;
            }
            "--rounds" => {
                rounds = need(i)?.parse().map_err(|e| format!("--rounds: {e}"))?;
                i += 2;
            }
            "--out" => {
                out = need(i)?.clone();
                i += 2;
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok((seed, rounds, out))
}

fn main() -> ExitCode {
    let (seed, rounds, out) = match parse_args() {
        Ok(v) => v,
        Err(e) => {
            eprintln!("chaos: {e}");
            return ExitCode::from(2);
        }
    };
    let report = run_suite(seed, rounds);
    let json = match serde_json::to_string(&report) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("chaos: serialize: {e}");
            return ExitCode::from(2);
        }
    };
    if let Err(e) = std::fs::write(&out, format!("{json}\n")) {
        eprintln!("chaos: writing {out}: {e}");
        return ExitCode::from(2);
    }
    println!(
        "chaos: seed {seed}, {} injections, {} detected -> {out}",
        report.outcomes.len(),
        report.n_detected
    );
    for o in report.outcomes.iter().filter(|o| !o.detected) {
        eprintln!(
            "chaos: UNDETECTED {} (seed {}): {}",
            o.scenario, o.seed, o.detail
        );
    }
    if report.all_detected {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
