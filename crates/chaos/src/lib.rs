//! # aptq-chaos
//!
//! Seeded, deterministic fault injection for the APTQ stack.
//!
//! Every scenario builds a small known-good pipeline (float model →
//! calibration → quantize → pack → envelope → decode), injects exactly
//! one fault chosen by an explicit [`FaultPlan`] handle, and then
//! checks the stack's contract: the fault must either be **detected**
//! (a structured error — never a panic) or **provably harmless**
//! (bit-identical output to a run that never saw the fault).
//!
//! The harness holds no global state, reads no environment variables
//! and never consults the clock: the same seed reproduces the same
//! faults, byte for byte, which is what lets CI archive
//! `results/chaos.json` and diff it across thread counts.

use aptq_core::grid::GridConfig;
use aptq_core::hessian::{HessianMode, LayerHessian};
use aptq_core::plan::QuantPlan;
use aptq_lm::decode::{BatchDecodeSession, DecodeSession};
use aptq_lm::{LayerRef, LmError, Model, ModelConfig};
use aptq_qmodel::{QModelError, QuantizedModel};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The seeded source of every fault decision, threaded by value
/// through the scenarios (no globals, no env, no clock).
#[derive(Debug)]
pub struct FaultPlan {
    seed: u64,
    rng: StdRng,
}

impl FaultPlan {
    /// A plan whose decisions are a pure function of `seed`.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The seed this plan was built from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// A fault site in `0..bound` (`0` when `bound == 0`).
    pub fn index(&mut self, bound: usize) -> usize {
        if bound == 0 {
            0
        } else {
            self.rng.gen_range(0..bound)
        }
    }

    /// A non-zero XOR mask for single-byte corruption.
    pub fn mask(&mut self) -> u8 {
        1u8 << self.rng.gen_range(0..8)
    }
}

/// What happened when one fault was injected.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FaultOutcome {
    /// Scenario name (stable identifier, e.g. `packed-bit-flip`).
    pub scenario: String,
    /// Seed of the [`FaultPlan`] that chose the fault site.
    pub seed: u64,
    /// Whether the stack detected the fault (or proved it harmless).
    pub detected: bool,
    /// Human-readable account of the fault and the stack's response.
    pub detail: String,
}

/// The archived result of a full chaos run ([`run_suite`]).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChaosReport {
    /// Base seed of the run.
    pub seed: u64,
    /// Rounds executed (each round runs every scenario once).
    pub rounds: usize,
    /// Per-injection outcomes in execution order.
    pub outcomes: Vec<FaultOutcome>,
    /// Number of detected (or provably harmless) faults.
    pub n_detected: usize,
    /// `true` iff every injected fault was detected.
    pub all_detected: bool,
}

/// Canonical scenario names in execution order.
pub const SCENARIOS: [&str; 7] = [
    "checkpoint-mutation",
    "checkpoint-truncation",
    "plan-mutation",
    "packed-bit-flip",
    "nan-weight",
    "calibration-truncation",
    "batch-quarantine",
];

fn outcome(scenario: &str, plan: &FaultPlan, detected: bool, detail: String) -> FaultOutcome {
    FaultOutcome {
        scenario: scenario.to_string(),
        seed: plan.seed(),
        detected,
        detail,
    }
}

/// The shared tiny fixture: model, calibration set, Hessians.
fn fixture(seed: u64) -> (Model, Vec<Vec<u32>>, BTreeMap<LayerRef, LayerHessian>) {
    let model = Model::new(&ModelConfig::test_tiny(16), seed);
    let calib: Vec<Vec<u32>> = (0..4)
        .map(|k| (0..10).map(|i| ((i * 3 + k) % 16) as u32).collect())
        .collect();
    // The fixture is known-good by construction; a failure here is a
    // harness bug, not an injected fault.
    let hs = aptq_core::collect_hessians(&model, &calib, HessianMode::AttentionAware)
        .expect("chaos fixture: calibration must succeed");
    (model, calib, hs)
}

/// Swaps one ASCII digit (`'1'` ↔ `'2'`, others bumped to `'1'`) at or
/// after `start`, keeping the text valid UTF-8. Returns `None` if no
/// digit exists there.
fn swap_digit(text: &str, start: usize) -> Option<String> {
    let bytes = text.as_bytes();
    let hit = (start..bytes.len()).find(|&i| bytes[i].is_ascii_digit())?;
    let mut out = bytes.to_vec();
    out[hit] = if out[hit] == b'1' { b'2' } else { b'1' };
    String::from_utf8(out).ok()
}

/// Mutates one payload byte of a sealed model checkpoint; the envelope
/// load must reject it with a structured [`LmError::Checkpoint`].
///
/// # Determinism
///
/// The fault site is a pure function of the plan's seed; the fixture
/// model never runs a forward pass here.
pub fn checkpoint_mutation(plan: &mut FaultPlan) -> FaultOutcome {
    let (model, _, _) = fixture(51);
    let Ok(text) = model.to_envelope_json() else {
        return outcome("checkpoint-mutation", plan, false, "seal failed".into());
    };
    let body = text.find('\n').map(|i| i + 1).unwrap_or(0);
    let site = body + plan.index(text.len().saturating_sub(body));
    let Some(mutated) = swap_digit(&text, site).or_else(|| swap_digit(&text, body)) else {
        return outcome(
            "checkpoint-mutation",
            plan,
            false,
            "no digit to flip".into(),
        );
    };
    match Model::from_envelope_json(&mutated) {
        Err(LmError::Checkpoint(e)) => outcome(
            "checkpoint-mutation",
            plan,
            true,
            format!("byte near {site} flipped; load rejected: {e}"),
        ),
        Err(e) => outcome(
            "checkpoint-mutation",
            plan,
            false,
            format!("wrong error class: {e}"),
        ),
        Ok(_) => outcome(
            "checkpoint-mutation",
            plan,
            false,
            "corrupted checkpoint loaded cleanly".into(),
        ),
    }
}

/// Truncates a sealed model checkpoint at a seeded byte offset; the
/// load must reject it — never panic — whether the cut lands in the
/// header or the payload.
///
/// # Determinism
///
/// The cut point is a pure function of the plan's seed.
pub fn checkpoint_truncation(plan: &mut FaultPlan) -> FaultOutcome {
    let (model, _, _) = fixture(51);
    let Ok(text) = model.to_envelope_json() else {
        return outcome("checkpoint-truncation", plan, false, "seal failed".into());
    };
    let mut cut = plan.index(text.len());
    while cut > 0 && !text.is_char_boundary(cut) {
        cut -= 1;
    }
    match Model::from_envelope_json(&text[..cut]) {
        Err(LmError::Checkpoint(e)) => outcome(
            "checkpoint-truncation",
            plan,
            true,
            format!(
                "truncated to {cut}/{} bytes; load rejected: {e}",
                text.len()
            ),
        ),
        Err(e) => outcome(
            "checkpoint-truncation",
            plan,
            false,
            format!("wrong error class: {e}"),
        ),
        Ok(_) => outcome(
            "checkpoint-truncation",
            plan,
            false,
            "truncated checkpoint loaded cleanly".into(),
        ),
    }
}

/// Mutates one payload byte of a sealed quantization plan; the load
/// must reject it.
///
/// # Determinism
///
/// The fault site is a pure function of the plan's seed.
pub fn plan_mutation(plan: &mut FaultPlan) -> FaultOutcome {
    let (model, _, _) = fixture(51);
    let qplan = QuantPlan::uniform(&model, 4);
    let Ok(text) = qplan.to_envelope_json() else {
        return outcome("plan-mutation", plan, false, "seal failed".into());
    };
    let body = text.find('\n').map(|i| i + 1).unwrap_or(0);
    let site = body + plan.index(text.len().saturating_sub(body));
    let Some(mutated) = swap_digit(&text, site).or_else(|| swap_digit(&text, body)) else {
        return outcome("plan-mutation", plan, false, "no digit to flip".into());
    };
    match QuantPlan::from_envelope_json(&mutated) {
        Err(LmError::Checkpoint(e)) => outcome(
            "plan-mutation",
            plan,
            true,
            format!("byte near {site} flipped; load rejected: {e}"),
        ),
        Err(e) => outcome(
            "plan-mutation",
            plan,
            false,
            format!("wrong error class: {e}"),
        ),
        Ok(_) => outcome(
            "plan-mutation",
            plan,
            false,
            "corrupted plan loaded cleanly".into(),
        ),
    }
}

/// Flips one bit in one packed layer's code stream;
/// [`QuantizedModel::verify`] must name exactly that layer.
///
/// # Determinism
///
/// Bit-identical at any `APTQ_THREADS` value: quantization runs on the
/// deterministic threadpool and the fault site is seed-derived.
pub fn packed_bit_flip(plan: &mut FaultPlan) -> FaultOutcome {
    let (model, _, hs) = fixture(51);
    let qplan = QuantPlan::uniform(&model, 4);
    let mut q = match QuantizedModel::quantize_from(&model, &qplan, &hs, &GridConfig::default()) {
        Ok(q) => q,
        Err(e) => {
            return outcome(
                "packed-bit-flip",
                plan,
                false,
                format!("quantize failed: {e}"),
            )
        }
    };
    let refs = model.layer_refs();
    let target = refs[plan.index(refs.len())];
    let byte = plan.index(4096);
    let mask = plan.mask();
    if !q.corrupt_layer(target, byte, mask) {
        return outcome(
            "packed-bit-flip",
            plan,
            false,
            "corruption hook no-op".into(),
        );
    }
    match q.verify() {
        Err(QModelError::Integrity(e)) => {
            let named = e.to_string().contains(&target.to_string());
            outcome(
                "packed-bit-flip",
                plan,
                named,
                format!("{target} byte {byte} ^ {mask:#04x}; verify: {e}"),
            )
        }
        Err(e) => outcome(
            "packed-bit-flip",
            plan,
            false,
            format!("wrong error class: {e}"),
        ),
        Ok(()) => outcome(
            "packed-bit-flip",
            plan,
            false,
            "verify passed on corrupted storage".into(),
        ),
    }
}

/// NaN-poisons one float weight; the decode session must quarantine
/// itself with [`LmError::NonFiniteLogits`] instead of emitting NaN
/// logits, and stay quarantined on the next feed.
///
/// # Determinism
///
/// Bit-identical at any `APTQ_THREADS` value: the forward runs on the
/// deterministic threadpool and the poisoned element is seed-derived.
pub fn nan_weight(plan: &mut FaultPlan) -> FaultOutcome {
    let (mut model, _, _) = fixture(51);
    let n_blocks = model.blocks().len();
    let b = plan.index(n_blocks);
    let w = model.blocks_mut()[b].attn.wq_mut().weight_mut();
    let site = plan.index(w.len());
    w.as_mut_slice()[site] = f32::NAN;
    let mut session = DecodeSession::new(&model);
    let tokens = [1u32, 5, 9, 2];
    for &t in &tokens {
        match session.feed(t) {
            Ok(logits) => {
                if !logits.iter().all(|v| v.is_finite()) {
                    return outcome(
                        "nan-weight",
                        plan,
                        false,
                        "non-finite logits escaped the quarantine check".into(),
                    );
                }
            }
            Err(LmError::NonFiniteLogits { pos }) => {
                // Quarantine must be sticky.
                let sticky = matches!(
                    session.feed(0),
                    Err(LmError::NonFiniteLogits { pos: p }) if p == pos
                ) && session.quarantined() == Some(pos);
                return outcome(
                    "nan-weight",
                    plan,
                    sticky,
                    format!(
                        "block {b} wq[{site}] = NaN; quarantined at pos {pos}, sticky: {sticky}"
                    ),
                );
            }
            Err(e) => return outcome("nan-weight", plan, false, format!("wrong error class: {e}")),
        }
    }
    outcome(
        "nan-weight",
        plan,
        false,
        "NaN weight never reached the logits".into(),
    )
}

/// Truncates the calibration snapshot to empty segments; Hessian
/// collection must fail with a structured
/// [`aptq_core::QuantError::EmptyCalibration`].
///
/// # Determinism
///
/// Bit-identical at any `APTQ_THREADS` value; the truncation is total,
/// so the outcome does not depend on the seed.
pub fn calibration_truncation(plan: &mut FaultPlan) -> FaultOutcome {
    let (model, mut calib, _) = fixture(51);
    for seg in &mut calib {
        seg.truncate(0);
    }
    match aptq_core::collect_hessians(&model, &calib, HessianMode::AttentionAware) {
        Err(aptq_core::QuantError::EmptyCalibration) => outcome(
            "calibration-truncation",
            plan,
            true,
            "empty calibration rejected with EmptyCalibration".into(),
        ),
        Err(e) => outcome(
            "calibration-truncation",
            plan,
            false,
            format!("wrong error class: {e}"),
        ),
        Ok(_) => outcome(
            "calibration-truncation",
            plan,
            false,
            "empty calibration produced Hessians".into(),
        ),
    }
}

/// Poisons one sequence's KV cache mid-stream in a 3-sequence batched
/// decode. The poisoned sequence must be evicted with a structured
/// status while the surviving peers' logits stay **bit-identical** to a
/// 2-sequence run that never contained the poisoned sequence.
///
/// # Determinism
///
/// Bit-identical at any `APTQ_THREADS` value: both sessions run on the
/// deterministic threadpool and the poison step is seed-derived.
pub fn batch_quarantine(plan: &mut FaultPlan) -> FaultOutcome {
    const PROMPT_LEN: usize = 5;
    let (model, _, _) = fixture(51);
    let prompts: Vec<Vec<u32>> = (0..3)
        .map(|_| (0..PROMPT_LEN).map(|_| plan.index(16) as u32).collect())
        .collect();
    let poison_after = 1 + plan.index(2); // poison after step 1 or 2

    let mut chaos_sess = BatchDecodeSession::new(&model);
    let ids: Vec<usize> = (0..3).map(|_| chaos_sess.join()).collect();
    let mut clean_sess = BatchDecodeSession::new(&model);
    let clean_ids: Vec<usize> = (0..2).map(|_| clean_sess.join()).collect();

    let mut victim_evicted = false;
    let mut peers_identical = true;
    for t in 0..PROMPT_LEN {
        let step_toks: Vec<u32> = prompts.iter().map(|p| p[t]).collect();
        let mut toks: Vec<(usize, u32)> = Vec::new();
        for (i, &id) in ids.iter().enumerate() {
            if i == 1 && victim_evicted {
                continue;
            }
            toks.push((id, step_toks[i]));
        }
        let chaos_logits = match chaos_sess.step(&toks) {
            Ok(m) => m,
            Err(e) => return outcome("batch-quarantine", plan, false, format!("step failed: {e}")),
        };
        let clean_toks = [(clean_ids[0], step_toks[0]), (clean_ids[1], step_toks[2])];
        let clean_logits = match clean_sess.step(&clean_toks) {
            Ok(m) => m,
            Err(e) => {
                return outcome(
                    "batch-quarantine",
                    plan,
                    false,
                    format!("clean step failed: {e}"),
                )
            }
        };
        // Map surviving peers (fixture seqs 0 and 2) onto the clean
        // session's two rows and demand bit-identity.
        let peer_rows: Vec<usize> = if victim_evicted {
            vec![0, 1]
        } else {
            vec![0, 2]
        };
        for (clean_row, &chaos_row) in peer_rows.iter().enumerate() {
            let same = chaos_logits
                .row(chaos_row)
                .iter()
                .zip(clean_logits.row(clean_row))
                .all(|(a, b)| a.to_bits() == b.to_bits());
            peers_identical &= same;
        }
        if chaos_sess.evicted_last_step().contains(&ids[1]) {
            victim_evicted = true;
        }
        if t == poison_after && !victim_evicted {
            if let Err(e) = chaos_sess.poison_kv_cache(ids[1]) {
                return outcome(
                    "batch-quarantine",
                    plan,
                    false,
                    format!("poison failed: {e}"),
                );
            }
        }
    }
    let detected = victim_evicted && peers_identical;
    outcome(
        "batch-quarantine",
        plan,
        detected,
        format!(
            "poisoned seq {} after step {poison_after}; evicted: {victim_evicted}, peers bit-identical: {peers_identical}",
            ids[1]
        ),
    )
}

/// Runs every scenario `rounds` times with per-injection derived seeds
/// and aggregates the archived [`ChaosReport`].
///
/// # Determinism
///
/// Bit-identical at any `APTQ_THREADS` value: every scenario is either
/// forward-free or documented bit-identical, and all fault sites derive
/// from `seed` alone (no env, no clock, no global state).
pub fn run_suite(seed: u64, rounds: usize) -> ChaosReport {
    type Scenario = fn(&mut FaultPlan) -> FaultOutcome;
    let scenarios: [Scenario; 7] = [
        checkpoint_mutation,
        checkpoint_truncation,
        plan_mutation,
        packed_bit_flip,
        nan_weight,
        calibration_truncation,
        batch_quarantine,
    ];
    let mut outcomes = Vec::with_capacity(rounds * scenarios.len());
    for round in 0..rounds {
        for (i, scenario) in scenarios.iter().enumerate() {
            let sub_seed = seed
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add((round * scenarios.len() + i) as u64);
            let mut plan = FaultPlan::new(sub_seed);
            outcomes.push(scenario(&mut plan));
        }
    }
    let n_detected = outcomes.iter().filter(|o| o.detected).count();
    let all_detected = n_detected == outcomes.len();
    ChaosReport {
        seed,
        rounds,
        outcomes,
        n_detected,
        all_detected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_fault_class_is_detected() {
        let report = run_suite(7, 1);
        assert_eq!(report.outcomes.len(), SCENARIOS.len());
        for o in &report.outcomes {
            assert!(o.detected, "{}: {}", o.scenario, o.detail);
        }
        assert!(report.all_detected);
        assert_eq!(report.n_detected, SCENARIOS.len());
    }

    #[test]
    fn suite_is_deterministic_for_a_seed() {
        let a = serde_json::to_string(&run_suite(11, 1)).unwrap();
        let b = serde_json::to_string(&run_suite(11, 1)).unwrap();
        assert_eq!(a, b);
        let c = serde_json::to_string(&run_suite(12, 1)).unwrap();
        assert_ne!(a, c, "different seeds must pick different fault sites");
    }

    #[test]
    fn fault_plan_is_a_pure_function_of_its_seed() {
        let mut a = FaultPlan::new(3);
        let mut b = FaultPlan::new(3);
        for bound in [1usize, 7, 100, 4096] {
            assert_eq!(a.index(bound), b.index(bound));
        }
        assert_eq!(a.mask(), b.mask());
        assert_eq!(a.seed(), 3);
        assert_eq!(FaultPlan::new(9).index(0), 0);
    }

    #[test]
    fn report_serializes_with_scenario_names() {
        let report = run_suite(5, 1);
        let json = serde_json::to_string(&report).unwrap();
        for name in SCENARIOS {
            assert!(json.contains(name), "missing {name}");
        }
        let back: ChaosReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.outcomes.len(), report.outcomes.len());
    }
}
