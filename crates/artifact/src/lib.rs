//! # aptq-artifact
//!
//! Versioned, checksummed envelopes for every serialized artifact in
//! the workspace: model checkpoints, quantization plans and packed
//! `QuantizedModel` payloads.
//!
//! At 2–4 bits per weight a single corrupted byte silently poisons
//! every downstream logit, so artifacts are never trusted raw. An
//! envelope is a one-line JSON header followed by the raw payload:
//!
//! ```text
//! {"magic":"aptq-artifact","version":1,"kind":"model","payload_fnv64":"…","sections":…}
//! <payload bytes, verbatim>
//! ```
//!
//! The header carries an FNV-1a 64 checksum of the whole payload plus
//! named per-section checksums (per-tensor for checkpoints, per-layer
//! for packed models) that loaders re-derive from the *decoded* value,
//! catching corruption that survives parsing. Line framing keeps the
//! megabyte JSON payload unescaped and means a flipped byte in either
//! the header or the payload is always detectable.
//!
//! [`Fnv64`] is the fingerprint machinery previously private to
//! `aptq_core::QuantSession`, promoted here so every crate checksums
//! artifacts identically.
//!
//! # Example
//!
//! ```
//! use aptq_artifact::{open, seal, ArtifactError, ArtifactKind};
//! use std::collections::BTreeMap;
//!
//! let sections = BTreeMap::from([("bits".to_string(), 7u64)]);
//! let text = seal(ArtifactKind::Plan, &sections, "{\"plan\":[]}").unwrap();
//! let opened = open(ArtifactKind::Plan, &text).unwrap();
//! assert_eq!(opened.payload, "{\"plan\":[]}");
//! assert_eq!(opened.sections["bits"], 7);
//!
//! let tampered = text.replace("[]", "[1]");
//! assert!(matches!(
//!     open(ArtifactKind::Plan, &tampered),
//!     Err(ArtifactError::ChecksumMismatch { .. })
//! ));
//! ```

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// First bytes of every envelope header.
pub const MAGIC: &str = "aptq-artifact";

/// The envelope format version this crate writes and accepts.
pub const VERSION: u32 = 1;

/// What kind of artifact an envelope wraps. Loaders state the kind
/// they expect so a plan is never deserialized as a checkpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ArtifactKind {
    /// An fp32 model checkpoint (`aptq_lm::Model`).
    Model,
    /// A per-layer bit-width plan (`aptq_core::QuantPlan`).
    Plan,
    /// A packed sub-byte model (`aptq_qmodel::QuantizedModel`).
    PackedModel,
}

impl ArtifactKind {
    /// The header string for this kind.
    pub fn as_str(self) -> &'static str {
        match self {
            ArtifactKind::Model => "model",
            ArtifactKind::Plan => "plan",
            ArtifactKind::PackedModel => "packed-model",
        }
    }

    /// Parses a header kind string.
    pub fn parse(s: &str) -> Option<ArtifactKind> {
        match s {
            "model" => Some(ArtifactKind::Model),
            "plan" => Some(ArtifactKind::Plan),
            "packed-model" => Some(ArtifactKind::PackedModel),
            _ => None,
        }
    }
}

impl std::fmt::Display for ArtifactKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Structured artifact-validation failures. Every load error is one of
/// these — loaders never panic on hostile bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArtifactError {
    /// The envelope (or its payload) could not be parsed at all:
    /// missing header line, bad magic, unknown kind, invalid JSON.
    Malformed(String),
    /// The header declared a format version this build cannot read.
    UnsupportedVersion {
        /// Version found in the header.
        found: u32,
        /// Version this build supports.
        supported: u32,
    },
    /// The envelope wraps a different artifact kind than the loader
    /// expected.
    KindMismatch {
        /// Kind the loader asked for.
        expected: ArtifactKind,
        /// Kind declared in the header.
        got: ArtifactKind,
    },
    /// A checksum did not match: the named section (or the whole
    /// payload, section `"payload"`) is corrupt.
    ChecksumMismatch {
        /// Which section failed.
        section: String,
        /// Checksum recorded in the header.
        expected: u64,
        /// Checksum recomputed from the bytes/content.
        got: u64,
    },
}

impl std::fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArtifactError::Malformed(msg) => write!(f, "malformed artifact: {msg}"),
            ArtifactError::UnsupportedVersion { found, supported } => {
                write!(
                    f,
                    "artifact version {found} not supported (this build reads version {supported})"
                )
            }
            ArtifactError::KindMismatch { expected, got } => {
                write!(f, "artifact is a `{got}`, expected a `{expected}`")
            }
            ArtifactError::ChecksumMismatch {
                section,
                expected,
                got,
            } => write!(
                f,
                "checksum mismatch in section `{section}`: header says {expected:016x}, content is {got:016x}"
            ),
        }
    }
}

impl std::error::Error for ArtifactError {}

/// FNV-1a 64-bit hasher — the workspace fingerprint primitive.
///
/// Two feeding modes exist: [`Fnv64::eat_bytes`]/[`Fnv64::eat_u64`]
/// absorb per byte (artifact payloads), while [`Fnv64::eat_word`]
/// absorbs a whole 64-bit word in one multiply — the fast path
/// `QuantSession` uses per f32 weight, preserved here bit-for-bit.
#[derive(Debug, Clone)]
pub struct Fnv64(u64);

impl Fnv64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Fnv64(Self::OFFSET)
    }

    /// Absorbs a byte slice, one byte per multiply.
    pub fn eat_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(Self::PRIME);
        }
    }

    /// Absorbs a `u64` as its 8 little-endian bytes.
    pub fn eat_u64(&mut self, v: u64) {
        self.eat_bytes(&v.to_le_bytes());
    }

    /// Absorbs a whole 64-bit word in a single xor-multiply (the
    /// per-f32 fast path: `eat_word(u64::from(x.to_bits()))`).
    pub fn eat_word(&mut self, w: u64) {
        self.0 = (self.0 ^ w).wrapping_mul(Self::PRIME);
    }

    /// The digest so far.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64::new()
    }
}

/// FNV-1a 64 of a byte slice.
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.eat_bytes(bytes);
    h.finish()
}

/// The parsed JSON header line. Checksums are stored as fixed-width
/// hex strings so the header is self-describing and diff-friendly.
#[derive(Debug, Serialize, Deserialize)]
struct Header {
    magic: String,
    version: u32,
    kind: String,
    payload_fnv64: String,
    sections: BTreeMap<String, String>,
}

/// A validated envelope: the payload (borrowed from the input) and the
/// decoded per-section checksums.
#[derive(Debug)]
pub struct Opened<'a> {
    /// The raw payload, byte-verified against the header checksum.
    pub payload: &'a str,
    /// Per-section checksums from the header. Loaders re-derive these
    /// from the decoded value and compare via [`verify_sections`].
    pub sections: BTreeMap<String, u64>,
}

fn hex16(v: u64) -> String {
    format!("{v:016x}")
}

fn parse_hex(field: &str, s: &str) -> Result<u64, ArtifactError> {
    u64::from_str_radix(s, 16)
        .map_err(|_| ArtifactError::Malformed(format!("`{field}` is not a hex checksum: `{s}`")))
}

/// Wraps `payload` in a checksummed envelope of the given kind.
///
/// `sections` are named content checksums the loader will re-derive
/// from the decoded artifact (pass an empty map if the payload
/// checksum is enough).
///
/// # Errors
///
/// Returns [`ArtifactError::Malformed`] if the header fails to
/// serialize (not reachable for well-formed section names).
pub fn seal(
    kind: ArtifactKind,
    sections: &BTreeMap<String, u64>,
    payload: &str,
) -> Result<String, ArtifactError> {
    let header = Header {
        magic: MAGIC.to_string(),
        version: VERSION,
        kind: kind.as_str().to_string(),
        payload_fnv64: hex16(fnv1a_64(payload.as_bytes())),
        sections: sections
            .iter()
            .map(|(k, &v)| (k.clone(), hex16(v)))
            .collect(),
    };
    let head = serde_json::to_string(&header)
        .map_err(|e| ArtifactError::Malformed(format!("header serialization: {e}")))?;
    Ok(format!("{head}\n{payload}"))
}

/// Whether `text` looks like an envelope (vs a bare legacy artifact).
/// Cheap prefix test — [`open`] still fully validates.
pub fn is_envelope(text: &str) -> bool {
    text.starts_with("{\"magic\":\"aptq-artifact\"")
}

/// Validates an envelope and returns its payload + section checksums.
///
/// Checks, in order: header framing and JSON, magic, version, kind,
/// then the FNV-1a 64 of every payload byte.
///
/// # Errors
///
/// Returns [`ArtifactError::Malformed`] for framing/JSON/magic
/// problems, [`ArtifactError::UnsupportedVersion`] and
/// [`ArtifactError::KindMismatch`] for header fields that disagree
/// with this loader, and [`ArtifactError::ChecksumMismatch`] (section
/// `"payload"`) when the payload bytes do not hash to the header's
/// checksum.
pub fn open(expected: ArtifactKind, text: &str) -> Result<Opened<'_>, ArtifactError> {
    let (head, payload) = text
        .split_once('\n')
        .ok_or_else(|| ArtifactError::Malformed("missing header line".to_string()))?;
    let header: Header =
        serde_json::from_str(head).map_err(|e| ArtifactError::Malformed(format!("header: {e}")))?;
    if header.magic != MAGIC {
        return Err(ArtifactError::Malformed(format!(
            "bad magic `{}`",
            header.magic
        )));
    }
    if header.version != VERSION {
        return Err(ArtifactError::UnsupportedVersion {
            found: header.version,
            supported: VERSION,
        });
    }
    let kind = ArtifactKind::parse(&header.kind).ok_or_else(|| {
        ArtifactError::Malformed(format!("unknown artifact kind `{}`", header.kind))
    })?;
    if kind != expected {
        return Err(ArtifactError::KindMismatch {
            expected,
            got: kind,
        });
    }
    let want = parse_hex("payload_fnv64", &header.payload_fnv64)?;
    let got = fnv1a_64(payload.as_bytes());
    if got != want {
        return Err(ArtifactError::ChecksumMismatch {
            section: "payload".to_string(),
            expected: want,
            got,
        });
    }
    let mut sections = BTreeMap::new();
    for (k, v) in &header.sections {
        sections.insert(k.clone(), parse_hex(k, v)?);
    }
    Ok(Opened { payload, sections })
}

/// Compares the header's section checksums against checksums re-derived
/// from the decoded artifact. Strict in both directions: a section
/// listed but not re-derived (or vice versa) is as fatal as a value
/// mismatch.
///
/// # Errors
///
/// Returns [`ArtifactError::ChecksumMismatch`] for a differing value
/// and [`ArtifactError::Malformed`] for a missing/unlisted section.
pub fn verify_sections(
    stored: &BTreeMap<String, u64>,
    derived: &BTreeMap<String, u64>,
) -> Result<(), ArtifactError> {
    for (k, &want) in stored {
        match derived.get(k) {
            None => {
                return Err(ArtifactError::Malformed(format!(
                    "header lists section `{k}` absent from the artifact"
                )))
            }
            Some(&got) if got != want => {
                return Err(ArtifactError::ChecksumMismatch {
                    section: k.clone(),
                    expected: want,
                    got,
                })
            }
            Some(_) => {}
        }
    }
    for k in derived.keys() {
        if !stored.contains_key(k) {
            return Err(ArtifactError::Malformed(format!(
                "artifact section `{k}` missing from the header"
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sections() -> BTreeMap<String, u64> {
        BTreeMap::from([
            ("alpha".to_string(), 0xdead_beef_u64),
            ("beta".to_string(), 7),
        ])
    }

    #[test]
    fn roundtrip_preserves_payload_and_sections() {
        let payload = "{\"x\": [1, 2, 3]}";
        let text = seal(ArtifactKind::Model, &sections(), payload).unwrap();
        assert!(is_envelope(&text));
        let opened = open(ArtifactKind::Model, &text).unwrap();
        assert_eq!(opened.payload, payload);
        assert_eq!(opened.sections, sections());
    }

    #[test]
    fn sealing_is_deterministic() {
        let a = seal(ArtifactKind::Plan, &sections(), "p").unwrap();
        let b = seal(ArtifactKind::Plan, &sections(), "p").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn payload_corruption_is_detected() {
        let text = seal(ArtifactKind::Model, &sections(), "payload-bytes").unwrap();
        let bad = text.replace("payload-bytes", "payload-bytez");
        assert!(matches!(
            open(ArtifactKind::Model, &bad),
            Err(ArtifactError::ChecksumMismatch { section, .. }) if section == "payload"
        ));
    }

    #[test]
    fn header_corruption_is_detected() {
        let text = seal(ArtifactKind::Model, &sections(), "p").unwrap();
        // Flip a hex digit inside the payload checksum.
        let sum = hex16(fnv1a_64(b"p"));
        let flipped: String = sum
            .chars()
            .map(|c| {
                if c == sum.chars().next().unwrap() {
                    '?'
                } else {
                    c
                }
            })
            .collect();
        let bad = text.replace(&sum, &flipped);
        assert!(open(ArtifactKind::Model, &bad).is_err());
    }

    #[test]
    fn kind_and_version_are_enforced() {
        let text = seal(ArtifactKind::Plan, &sections(), "p").unwrap();
        assert!(matches!(
            open(ArtifactKind::Model, &text),
            Err(ArtifactError::KindMismatch {
                expected: ArtifactKind::Model,
                got: ArtifactKind::Plan,
            })
        ));
        let vbad = text.replace("\"version\":1", "\"version\":9");
        assert!(matches!(
            open(ArtifactKind::Plan, &vbad),
            Err(ArtifactError::UnsupportedVersion {
                found: 9,
                supported: 1
            })
        ));
    }

    #[test]
    fn truncation_and_garbage_are_malformed() {
        assert!(matches!(
            open(ArtifactKind::Model, "no newline anywhere"),
            Err(ArtifactError::Malformed(_))
        ));
        assert!(matches!(
            open(ArtifactKind::Model, "{\"not\": \"an envelope\"}\npayload"),
            Err(ArtifactError::Malformed(_))
        ));
        let text = seal(ArtifactKind::Model, &sections(), "payload").unwrap();
        for cut in [1, text.len() / 2, text.len() - 1] {
            assert!(
                open(ArtifactKind::Model, &text[..cut]).is_err(),
                "cut={cut}"
            );
        }
    }

    #[test]
    fn section_verification_is_strict_both_ways() {
        let stored = sections();
        assert!(verify_sections(&stored, &stored.clone()).is_ok());

        let mut drifted = stored.clone();
        drifted.insert("beta".to_string(), 8);
        assert!(matches!(
            verify_sections(&stored, &drifted),
            Err(ArtifactError::ChecksumMismatch { section, expected: 7, got: 8 }) if section == "beta"
        ));

        let mut missing = stored.clone();
        missing.remove("alpha");
        assert!(matches!(
            verify_sections(&stored, &missing),
            Err(ArtifactError::Malformed(_))
        ));
        assert!(matches!(
            verify_sections(&missing, &stored),
            Err(ArtifactError::Malformed(_))
        ));
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // Canonical FNV-1a 64 test vectors.
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63_dc4c_8601_ec8c);
        // eat_u64 is byte-wise LE; eat_word is a single multiply.
        let mut by_bytes = Fnv64::new();
        by_bytes.eat_u64(0x0102_0304_0506_0708);
        let mut by_slice = Fnv64::new();
        by_slice.eat_bytes(&0x0102_0304_0506_0708_u64.to_le_bytes());
        assert_eq!(by_bytes.finish(), by_slice.finish());
        let mut w = Fnv64::new();
        w.eat_word(42);
        assert_ne!(w.finish(), Fnv64::new().finish());
    }

    #[test]
    fn errors_display_and_compose() {
        let e = ArtifactError::ChecksumMismatch {
            section: "s".to_string(),
            expected: 1,
            got: 2,
        };
        assert!(e.to_string().contains('s'));
        let boxed: Box<dyn std::error::Error> = Box::new(e);
        assert!(!boxed.to_string().is_empty());
        assert!(ArtifactError::Malformed("m".into())
            .to_string()
            .contains('m'));
        assert_eq!(
            ArtifactKind::parse("packed-model"),
            Some(ArtifactKind::PackedModel)
        );
        assert_eq!(ArtifactKind::parse("nope"), None);
        assert_eq!(ArtifactKind::PackedModel.to_string(), "packed-model");
    }
}
